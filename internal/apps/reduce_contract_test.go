package apps

import (
	"fmt"
	"math/rand"
	"testing"

	"datanet/internal/elasticmap"
	"datanet/internal/records"
)

// contractRecords synthesizes a small, varied record stream. Ratings stay
// on the 0.5 dyadic grid the generators use, so floating-point sums are
// exact under any evaluation order and the multiset contract is testable
// byte-for-byte.
func contractRecords() []records.Record {
	rng := rand.New(rand.NewSource(1))
	words := []string{"plot", "twist", "ending", "amazing", "director", "slow", "the", "a", "of", "scene"}
	recs := make([]records.Record, 240)
	for i := range recs {
		n := 3 + rng.Intn(6)
		payload := ""
		for w := 0; w < n; w++ {
			if w > 0 {
				payload += " "
			}
			payload += words[rng.Intn(len(words))]
		}
		recs[i] = records.Record{
			Sub:     fmt.Sprintf("movie-%05d", rng.Intn(3)),
			Time:    int64(rng.Intn(14)) * 3600 * 12,
			Rating:  1 + float64(rng.Intn(9))/2,
			Payload: payload,
		}
	}
	return recs
}

// TestReduceOrderAndSplitInsensitive enforces the App contract every
// registered application must satisfy for heavy-key splitting (and any
// partitioner-dependent shuffle delivery order) to be sound: Reduce is a
// function of the value multiset. For every key an app emits, the output
// must be byte-identical across random permutations of the values and
// across round-robin splits merged in any shard order — exactly the
// re-orderings the skew-aware partitioner's split/merge path produces.
func TestReduceOrderAndSplitInsensitive(t *testing.T) {
	recs := contractRecords()
	for _, app := range Extended() {
		t.Run(app.Name(), func(t *testing.T) {
			groups := make(map[string][]string)
			for _, r := range recs {
				app.Map(r, func(k, v string) { groups[k] = append(groups[k], v) })
			}
			if len(groups) == 0 {
				t.Fatal("app emitted nothing")
			}
			for key, vs := range groups {
				want := app.Reduce(key, vs)

				// Order-insensitivity: seeded random permutations.
				rng := rand.New(rand.NewSource(7))
				for trial := 0; trial < 5; trial++ {
					perm := append([]string(nil), vs...)
					rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
					if got := app.Reduce(key, perm); got != want {
						t.Fatalf("key %q: permuted values changed Reduce output\nwant %q\ngot  %q", key, want, got)
					}
				}

				// Split-insensitivity: deal the values round-robin into
				// shards (the split partitioner's delivery), then merge the
				// shard lists forward and reversed.
				for _, shardsN := range []int{2, 3, 5} {
					shards := make([][]string, shardsN)
					for i, v := range vs {
						shards[i%shardsN] = append(shards[i%shardsN], v)
					}
					forward := make([]string, 0, len(vs))
					for _, s := range shards {
						forward = append(forward, s...)
					}
					backward := make([]string, 0, len(vs))
					for i := shardsN - 1; i >= 0; i-- {
						backward = append(backward, shards[i]...)
					}
					if got := app.Reduce(key, forward); got != want {
						t.Fatalf("key %q: %d-way split (forward merge) changed Reduce output", key, shardsN)
					}
					if got := app.Reduce(key, backward); got != want {
						t.Fatalf("key %q: %d-way split (reverse merge) changed Reduce output", key, shardsN)
					}
				}
			}
		})
	}
}

// TestDistributedSortGlobalOrder pins the property range partitioning
// exists for: reducer outputs concatenated in reducer order are globally
// sorted, because DistributedSort keys sort lexically as (time, sub).
func TestDistributedSortGlobalOrder(t *testing.T) {
	app := DistributedSort{}
	groups := make(map[string][]string)
	for _, r := range contractRecords() {
		app.Map(r, func(k, v string) { groups[k] = append(groups[k], v) })
	}
	for k, vs := range groups {
		out := app.Reduce(k, vs)
		// Each key's rendering must itself be ascending.
		prev := ""
		for i, part := range splitComma(out) {
			if i > 0 && part < prev {
				t.Fatalf("key %q: unsorted rendering %q", k, out)
			}
			prev = part
		}
	}
}

func splitComma(s string) []string {
	if s == "" {
		return nil
	}
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// TestSubDatasetJoinBuildSide checks BuildJoinSide honors the ElasticMap
// distribution: only listed blocks are scanned, and the probe app joins
// against the produced windows.
func TestSubDatasetJoinBuildSide(t *testing.T) {
	day := int64(3600 * 24)
	blocks := [][]records.Record{
		{{Sub: "movie-B", Time: 0, Rating: 4}, {Sub: "movie-A", Time: 0, Rating: 1}},
		{{Sub: "movie-B", Time: day, Rating: 3}},
		{{Sub: "movie-B", Time: 2 * day, Rating: 5}}, // not in the distribution
	}
	dist := []elasticmap.BlockEstimate{{Block: 0, Size: 10}, {Block: 1, Size: 10}}
	build := BuildJoinSide(blocks, dist, "movie-B", day)
	join := NewSubDatasetJoin("movie-B", day, build)
	if got := build[join.JoinKey(0)]; got != "1x4.0000" {
		t.Errorf("window 0 build = %q, want 1x4.0000", got)
	}
	if got := build[join.JoinKey(day)]; got != "1x3.0000" {
		t.Errorf("window 1 build = %q, want 1x3.0000", got)
	}
	if _, ok := build[join.JoinKey(2*day)]; ok {
		t.Error("block outside the ElasticMap distribution was scanned")
	}
	out := join.Reduce(join.JoinKey(2*day), []string{"2.000"})
	if want := "n=1 avg=2.0000 movie-B=-"; out != want {
		t.Errorf("outer-join miss = %q, want %q", out, want)
	}
}
