package apps

import (
	"strconv"
	"strings"
	"testing"

	"datanet/internal/records"
)

func collect(app App, recs []records.Record) map[string][]string {
	groups := make(map[string][]string)
	for _, r := range recs {
		app.Map(r, func(k, v string) { groups[k] = append(groups[k], v) })
	}
	return groups
}

func TestAllReturnsFourApps(t *testing.T) {
	apps := All()
	if len(apps) != 4 {
		t.Fatalf("All() = %d apps", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name()] = true
		if a.CostFactor() <= 0 || a.OutputRatio() <= 0 {
			t.Errorf("%s has non-positive cost profile", a.Name())
		}
	}
	for _, want := range []string{"MovingAverage", "TopKSearch", "WordCount", "WordHistogram"} {
		if !names[want] {
			t.Errorf("missing app %s", want)
		}
	}
}

func TestCostOrdering(t *testing.T) {
	// The paper's premise: TopK is the heaviest computation, MovingAverage
	// the lightest (Fig. 6 derives from exactly this ordering).
	ma := NewMovingAverage(60)
	tk := NewTopKSearch(5, "q")
	wc := WordCount{}
	wh := WordHistogram{}
	if !(ma.CostFactor() < wc.CostFactor() && wc.CostFactor() <= wh.CostFactor() && wh.CostFactor() < tk.CostFactor()) {
		t.Errorf("cost ordering violated: MA=%g WC=%g WH=%g TopK=%g",
			ma.CostFactor(), wc.CostFactor(), wh.CostFactor(), tk.CostFactor())
	}
}

func TestWordCount(t *testing.T) {
	recs := []records.Record{
		{Sub: "m", Payload: "the plot the plot the"},
		{Sub: "m", Payload: "plot"},
	}
	groups := collect(WordCount{}, recs)
	if got := (WordCount{}).Reduce("the", groups["the"]); got != "3" {
		t.Errorf("the = %s", got)
	}
	if got := (WordCount{}).Reduce("plot", groups["plot"]); got != "3" {
		t.Errorf("plot = %s", got)
	}
	// Malformed values are skipped, not fatal.
	if got := (WordCount{}).Reduce("x", []string{"1", "junk", "2"}); got != "3" {
		t.Errorf("reduce with junk = %s", got)
	}
}

func TestWordHistogram(t *testing.T) {
	recs := []records.Record{{Sub: "m", Payload: "ab abc ab"}}
	groups := collect(WordHistogram{}, recs)
	if got := (WordHistogram{}).Reduce("len02", groups["len02"]); got != "2" {
		t.Errorf("len02 = %s", got)
	}
	if got := (WordHistogram{}).Reduce("len03", groups["len03"]); got != "1" {
		t.Errorf("len03 = %s", got)
	}
	// Very long words clamp at 32.
	long := collect(WordHistogram{}, []records.Record{{Payload: strings.Repeat("z", 100)}})
	if _, ok := long["len32"]; !ok {
		t.Error("long word not clamped to len32")
	}
}

func TestMovingAverage(t *testing.T) {
	app := NewMovingAverage(100)
	recs := []records.Record{
		{Time: 10, Rating: 4},
		{Time: 90, Rating: 2},
		{Time: 150, Rating: 5},
	}
	groups := collect(app, recs)
	if len(groups) != 2 {
		t.Fatalf("windows = %d, want 2", len(groups))
	}
	got := app.Reduce("w00000000", groups["w00000000"])
	f, err := strconv.ParseFloat(got, 64)
	if err != nil || f != 3 {
		t.Errorf("window 0 average = %s, want 3", got)
	}
	if got := app.Reduce("w", nil); got != "0" {
		t.Errorf("empty reduce = %s", got)
	}
	if NewMovingAverage(0).WindowSeconds != 3600 {
		t.Error("zero window not defaulted")
	}
}

func TestTopKSearch(t *testing.T) {
	app := NewTopKSearch(2, "alpha beta gamma")
	recs := []records.Record{
		{Sub: "a", Time: 1, Payload: "alpha beta gamma extra"}, // score 3
		{Sub: "b", Time: 2, Payload: "alpha nothing"},          // score 1
		{Sub: "c", Time: 3, Payload: "alpha beta"},             // score 2
		{Sub: "d", Time: 4, Payload: "unrelated words"},        // score 0 → no emit
	}
	groups := collect(app, recs)
	vals := groups["topk"]
	if len(vals) != 3 {
		t.Fatalf("candidates = %d, want 3 (zero scores dropped)", len(vals))
	}
	out := app.Reduce("topk", vals)
	parts := strings.Split(out, ",")
	if len(parts) != 2 {
		t.Fatalf("top-2 = %v", parts)
	}
	if !strings.Contains(parts[0], "a@1") || !strings.Contains(parts[1], "c@3") {
		t.Errorf("ranking wrong: %v", parts)
	}
	if NewTopKSearch(0, "q").K != 10 {
		t.Error("zero K not defaulted")
	}
}

func TestTopKReduceFewerThanK(t *testing.T) {
	app := NewTopKSearch(10, "x")
	if got := app.Reduce("topk", []string{"000001|a@1"}); got != "000001|a@1" {
		t.Errorf("reduce = %s", got)
	}
}

func TestSessionize(t *testing.T) {
	app := NewSessionize(100)
	recs := []records.Record{
		{Time: 10}, {Time: 50}, {Time: 150}, {Time: 151},
	}
	groups := collect(app, recs)
	if len(groups) != 2 {
		t.Fatalf("session windows = %d, want 2", len(groups))
	}
	if got := app.Reduce("sess0000000000", groups["sess0000000000"]); got != "2" {
		t.Errorf("window 0 count = %s", got)
	}
	if got := app.Reduce("sess0000000001", groups["sess0000000001"]); got != "2" {
		t.Errorf("window 1 count = %s", got)
	}
	if NewSessionize(0).Gap != 1800 {
		t.Error("zero gap not defaulted")
	}
	if app.CostFactor() <= NewMovingAverage(60).CostFactor() {
		t.Error("sessionization should cost more than plain iteration")
	}
}
