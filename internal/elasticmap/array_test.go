package elasticmap

import (
	"fmt"
	"strings"
	"testing"

	"datanet/internal/records"
)

// twoBlockFixture: sub "hero" dominates block 0 and trickles in block 1;
// background subs fill the rest.
func twoBlockFixture() [][]records.Record {
	pay := func(n int) string { return strings.Repeat("p", n) }
	b0 := []records.Record{
		{Sub: "hero", Payload: pay(3000)},
		{Sub: "hero", Payload: pay(2000)},
		{Sub: "bg-0", Payload: pay(50)},
		{Sub: "bg-1", Payload: pay(60)},
		{Sub: "bg-2", Payload: pay(70)},
	}
	b1 := []records.Record{
		{Sub: "hero", Payload: pay(40)},
		{Sub: "bg-0", Payload: pay(2500)},
		{Sub: "bg-3", Payload: pay(30)},
		{Sub: "bg-4", Payload: pay(45)},
	}
	return [][]records.Record{b0, b1}
}

func fixtureOpts() Options {
	return Options{Alpha: 0.4, BucketBounds: []int64{0, 64, 128, 512, 1024, 4096}}
}

func TestArrayBuildAndLen(t *testing.T) {
	arr := Build(twoBlockFixture(), fixtureOpts())
	if arr.Len() != 2 {
		t.Fatalf("Len = %d", arr.Len())
	}
	if arr.Block(0).NumSubs() != 4 || arr.Block(1).NumSubs() != 4 {
		t.Errorf("per-block sub counts: %d, %d", arr.Block(0).NumSubs(), arr.Block(1).NumSubs())
	}
}

func TestArrayDistribution(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	dist := arr.Distribution("hero")
	if len(dist) != 2 {
		t.Fatalf("hero should appear in both blocks: %v", dist)
	}
	truth0 := records.BySub(blocks[0])["hero"]
	if dist[0].Block != 0 || dist[0].Class != Hashed || dist[0].Size != truth0 {
		t.Errorf("block-0 estimate = %+v, want exact %d", dist[0], truth0)
	}
	// hero is tiny in block 1 → bloomed with δ approximation.
	if dist[1].Block != 1 || dist[1].Class != Bloomed {
		t.Errorf("block-1 estimate = %+v, want Bloomed", dist[1])
	}
}

func TestArrayEstimateEq6(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	total, hashed, bloomed := arr.EstimateDetailed("hero")
	if hashed != 1 || bloomed != 1 {
		t.Fatalf("τ1=%d τ2=%d, want 1 and 1", hashed, bloomed)
	}
	want := records.BySub(blocks[0])["hero"] + arr.Block(1).Delta()
	if total != want {
		t.Errorf("Eq.6 estimate = %d, want %d", total, want)
	}
	if got := arr.Estimate("hero"); got != total {
		t.Errorf("Estimate = %d, EstimateDetailed total = %d", got, total)
	}
}

func TestArrayRawBytes(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	var want int64
	for _, b := range blocks {
		want += records.TotalSize(b)
	}
	if got := arr.RawBytes(); got != want {
		t.Errorf("RawBytes = %d, want %d", got, want)
	}
}

func TestArrayAccuracyBounds(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	subs := []string{"hero", "bg-0", "bg-1", "bg-2", "bg-3", "bg-4"}
	chi := arr.OverallAccuracy(subs)
	if chi < 0 || chi > 1 {
		t.Fatalf("χ = %g out of [0,1]", chi)
	}
	if chi < 0.5 {
		t.Errorf("χ = %g unexpectedly low for a mostly-hashed fixture", chi)
	}
	// α=1 must be perfectly accurate.
	opts := fixtureOpts()
	opts.Alpha = 1
	exact := Build(blocks, opts)
	if chi := exact.OverallAccuracy(subs); chi < 0.999 {
		t.Errorf("α=1 accuracy = %g, want 1", chi)
	}
}

func TestAccuracyMonotoneInAlpha(t *testing.T) {
	// Many blocks with mixed content: accuracy should not degrade as α
	// grows.
	var blocks [][]records.Record
	for b := 0; b < 10; b++ {
		var recs []records.Record
		for i := 0; i < 40; i++ {
			recs = append(recs, records.Record{
				Sub:     fmt.Sprintf("s%02d", (b+i)%25),
				Payload: strings.Repeat("q", (i%13)*40),
			})
		}
		blocks = append(blocks, recs)
	}
	var subs []string
	for i := 0; i < 25; i++ {
		subs = append(subs, fmt.Sprintf("s%02d", i))
	}
	opts := fixtureOpts()
	prev := -1.0
	for _, a := range []float64{0.1, 0.3, 0.6, 1.0} {
		opts.Alpha = a
		chi := Build(blocks, opts).OverallAccuracy(subs)
		if chi < prev-0.02 { // small tolerance: bucket granularity
			t.Errorf("accuracy dropped at α=%g: %g < %g", a, chi, prev)
		}
		prev = chi
	}
}

func TestSubAccuracy(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	var actual int64
	for _, b := range blocks {
		actual += records.BySub(b)["hero"]
	}
	est, rel := arr.SubAccuracy("hero", actual)
	if est <= 0 {
		t.Fatalf("estimate = %d", est)
	}
	if rel > 0.05 {
		t.Errorf("relative error %g too large for a dominant sub", rel)
	}
	if _, rel := arr.SubAccuracy("hero", 0); rel != 0 {
		t.Error("zero actual should yield zero relative error")
	}
}

func TestRepresentationRatioAndMeanAlpha(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	if r := arr.RepresentationRatio(); r <= 0 {
		t.Errorf("RepresentationRatio = %g", r)
	}
	ma := arr.MeanAlpha()
	if ma <= 0 || ma > 1 {
		t.Errorf("MeanAlpha = %g", ma)
	}
	empty := Build(nil, fixtureOpts())
	if empty.MeanAlpha() != 0 || empty.RepresentationRatio() != 0 {
		t.Error("empty array ratios should be 0")
	}
}

func TestArraySubs(t *testing.T) {
	arr := Build(twoBlockFixture(), fixtureOpts())
	subs := arr.Subs()
	// hero and bg-0 are dominant somewhere; list must be sorted.
	foundHero := false
	for i, s := range subs {
		if s == "hero" {
			foundHero = true
		}
		if i > 0 && subs[i-1] >= s {
			t.Fatalf("Subs not sorted: %v", subs)
		}
	}
	if !foundHero {
		t.Errorf("Subs = %v, missing hero", subs)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	data, err := Encode(arr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != arr.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), arr.Len())
	}
	for _, sub := range []string{"hero", "bg-0", "bg-1", "bg-3", "nonexistent"} {
		for b := 0; b < arr.Len(); b++ {
			s1, c1 := arr.Block(b).Query(sub)
			s2, c2 := back.Block(b).Query(sub)
			if s1 != s2 || c1 != c2 {
				t.Errorf("block %d sub %q: (%d,%v) vs (%d,%v)", b, sub, s1, c1, s2, c2)
			}
		}
	}
	if arr.MemoryBits() != back.MemoryBits() {
		t.Errorf("memory mismatch after roundtrip: %d vs %d", arr.MemoryBits(), back.MemoryBits())
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("garbage must fail")
	}
	arr := Build(twoBlockFixture(), fixtureOpts())
	data, _ := Encode(arr)
	for _, cut := range []int{0, 3, 10, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d silently succeeded", cut)
		}
	}
}

func TestFromMetas(t *testing.T) {
	blocks := twoBlockFixture()
	metas := []*BlockMeta{
		BuildBlockMeta(blocks[0], fixtureOpts()),
		BuildBlockMeta(blocks[1], fixtureOpts()),
	}
	arr := FromMetas(metas, fixtureOpts())
	if arr.Len() != 2 || arr.Estimate("hero") == 0 {
		t.Error("FromMetas broken")
	}
}
