package elasticmap

import (
	"sort"

	"datanet/internal/records"
)

// Array is the ElasticMap array of paper Fig. 3: one BlockMeta per block
// file, in block order. Querying it yields the (approximate) distribution
// of any sub-dataset over all blocks without touching raw data.
type Array struct {
	metas []*BlockMeta
	opts  Options
}

// Build constructs the array from per-block record slices, scanning each
// block exactly once (overall O(records), the paper's single-scan claim).
func Build(blocks [][]records.Record, opts Options) *Array {
	metas := make([]*BlockMeta, len(blocks))
	for i, recs := range blocks {
		metas[i] = BuildBlockMeta(recs, opts)
	}
	return &Array{metas: metas, opts: opts.withDefaults()}
}

// FromMetas wraps pre-built metas (used by decoding and parallel builds).
func FromMetas(metas []*BlockMeta, opts Options) *Array {
	return &Array{metas: metas, opts: opts.withDefaults()}
}

// Len returns the number of blocks covered.
func (a *Array) Len() int { return len(a.metas) }

// Block returns the meta of block i.
func (a *Array) Block(i int) *BlockMeta { return a.metas[i] }

// Options returns the construction options.
func (a *Array) Options() Options { return a.opts }

// BlockEstimate is one block's contribution to a sub-dataset.
type BlockEstimate struct {
	Block int
	Size  int64
	Class Class
}

// Distribution returns the estimated per-block sizes of sub, including
// only blocks where the meta-data reports presence. This powers both the
// scheduler's edge weights and the I/O-skipping optimization (§V-B: blocks
// with no record in hash map or Bloom filter need not be read at all).
func (a *Array) Distribution(sub string) []BlockEstimate {
	var out []BlockEstimate
	for i, m := range a.metas {
		sz, class := m.Query(sub)
		if class == Absent {
			continue
		}
		out = append(out, BlockEstimate{Block: i, Size: sz, Class: class})
	}
	return out
}

// Estimate evaluates paper Eq. 6 for sub: the exact sizes of hash-resident
// blocks (τ1) plus δ per Bloom-resident block (τ2).
func (a *Array) Estimate(sub string) int64 {
	var total int64
	for _, m := range a.metas {
		sz, class := m.Query(sub)
		if class != Absent {
			total += sz
		}
	}
	return total
}

// EstimateDetailed also reports the τ1/τ2 split sizes.
func (a *Array) EstimateDetailed(sub string) (total int64, hashedBlocks, bloomedBlocks int) {
	for _, m := range a.metas {
		sz, class := m.Query(sub)
		switch class {
		case Hashed:
			total += sz
			hashedBlocks++
		case Bloomed:
			total += sz
			bloomedBlocks++
		}
	}
	return total, hashedBlocks, bloomedBlocks
}

// MemoryBits sums the actual meta-data footprint over all blocks.
func (a *Array) MemoryBits() int64 {
	var bits int64
	for _, m := range a.metas {
		bits += m.MemoryBits()
	}
	return bits
}

// RawBytes sums the represented raw data.
func (a *Array) RawBytes() int64 {
	var n int64
	for _, m := range a.metas {
		n += m.RawBytes()
	}
	return n
}

// RepresentationRatio is Table II's last column: bytes of raw data
// represented per byte of meta-data.
func (a *Array) RepresentationRatio() float64 {
	bits := a.MemoryBits()
	if bits == 0 {
		return 0
	}
	return float64(a.RawBytes()) / (float64(bits) / 8)
}

// MeanAlpha returns the realized hash share averaged over blocks, weighted
// by each block's sub-dataset count (Table II's first column).
func (a *Array) MeanAlpha() float64 {
	var hashed, total int
	for _, m := range a.metas {
		hashed += m.NumHashed()
		total += m.NumSubs()
	}
	if total == 0 {
		return 0
	}
	return float64(hashed) / float64(total)
}

// Subs returns the union of all sub-dataset keys recorded exactly (hash
// maps only; Bloom filters cannot be enumerated), sorted.
func (a *Array) Subs() []string {
	set := make(map[string]struct{})
	for _, m := range a.metas {
		for sub := range m.hash {
			set[sub] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for sub := range set {
		out = append(out, sub)
	}
	sort.Strings(out)
	return out
}

// OverallAccuracy computes the paper's χ (§V-B):
//
//	χ = 1 − |Σ_subs estimate(sub) − raw| / raw
//
// where raw is the total size of all records. It needs the ground-truth
// key universe because Bloom filters cannot be enumerated.
func (a *Array) OverallAccuracy(allSubs []string) float64 {
	raw := a.RawBytes()
	if raw == 0 {
		return 1
	}
	var est int64
	for _, sub := range allSubs {
		est += a.Estimate(sub)
	}
	diff := est - raw
	if diff < 0 {
		diff = -diff
	}
	chi := 1 - float64(diff)/float64(raw)
	if chi < 0 {
		chi = 0
	}
	return chi
}

// SubAccuracy returns the actual and estimated total size of one
// sub-dataset (Fig. 9's two series) given the ground truth.
func (a *Array) SubAccuracy(sub string, actual int64) (estimate int64, relError float64) {
	estimate = a.Estimate(sub)
	if actual == 0 {
		return estimate, 0
	}
	d := float64(estimate - actual)
	if d < 0 {
		d = -d
	}
	return estimate, d / float64(actual)
}
