package elasticmap

import (
	"testing"

	"datanet/internal/records"
)

// FuzzDecodeNeverPanics: arbitrary bytes into the ElasticMap decoder must
// yield an array or an error, never a panic.
func FuzzDecodeNeverPanics(f *testing.F) {
	valid, _ := Encode(Build(twoBlockFixture(), fixtureOpts()))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("DNE1"))
	f.Add([]byte("nope"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		arr, err := Decode(data)
		if err != nil {
			return
		}
		// A successfully decoded array must answer queries safely.
		for i := 0; i < arr.Len(); i++ {
			arr.Block(i).Query("probe")
		}
		arr.Estimate("probe")
		arr.MemoryBits()
	})
}

// FuzzSeparator: arbitrary observation streams keep the bucket invariants.
func FuzzSeparator(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 5}, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, sizes []byte, target uint8) {
		sep := NewSeparator([]int64{0, 16, 64, 256})
		for i, s := range sizes {
			sep.Observe(string(rune('a'+i%7)), int64(s)+1)
		}
		sum := 0
		for _, c := range sep.BucketCounts() {
			if c < 0 {
				t.Fatal("negative bucket count")
			}
			sum += c
		}
		if sum != sep.NumSubs() {
			t.Fatalf("bucket counts %d != subs %d", sum, sep.NumSubs())
		}
		th, _ := sep.ThresholdForCount(int(target))
		dom, non := sep.Split(th)
		if len(dom)+len(non) != sep.NumSubs() {
			t.Fatal("split lost sub-datasets")
		}
		if len(dom) > int(target) && int(target) > 0 {
			// Bucket-granular overshoot is only allowed when even the top
			// bucket exceeds the target (signaled by ok=false).
			if _, ok := sep.ThresholdForCount(int(target)); ok {
				t.Fatalf("hashed %d > target %d without overflow signal", len(dom), target)
			}
		}
	})
}

// FuzzBuildBlockMeta: arbitrary record shapes never lose a sub-dataset.
func FuzzBuildBlockMeta(f *testing.F) {
	f.Add(uint8(5), uint16(300), uint8(50))
	f.Fuzz(func(t *testing.T, nSubs uint8, payload uint16, alphaRaw uint8) {
		if nSubs == 0 {
			nSubs = 1
		}
		var recs []records.Record
		for i := 0; i < int(nSubs); i++ {
			recs = append(recs, records.Record{
				Sub:     string(rune('A' + i%26)),
				Payload: string(make([]byte, int(payload)%2000)),
			})
		}
		alpha := float64(alphaRaw%100+1) / 100
		meta := BuildBlockMeta(recs, Options{Alpha: alpha, BucketBounds: []int64{0, 64, 512, 4096}})
		for sub := range records.BySub(recs) {
			if _, class := meta.Query(sub); class == Absent {
				t.Fatalf("sub %q lost at alpha %g", sub, alpha)
			}
		}
	})
}
