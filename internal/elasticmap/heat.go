package elasticmap

// Heat export for placement: the rebalancer (internal/hdfs, driven by
// internal/placement optimizers) scores blocks by how concentrated the
// queried sub-dataset is in each block — exactly the per-block knowledge
// ElasticMap maintains and raw HDFS lacks. Hot blocks (high concentration
// of the sub-dataset a workload keeps querying) attract extra replicas;
// cold blocks are left alone.

// Concentration returns the fraction of the block's bytes attributed to
// sub by the meta-data: exact for hash-resident (dominant) sub-datasets,
// the δ approximation for Bloom-resident ones, 0 when absent. The result
// is clamped to [0, 1].
func (b *BlockMeta) Concentration(sub string) float64 {
	if b.rawBytes <= 0 {
		return 0
	}
	sz, class := b.Query(sub)
	if class == Absent {
		return 0
	}
	c := float64(sz) / float64(b.rawBytes)
	if c > 1 {
		c = 1
	}
	return c
}

// DominantConcentration returns the largest hash-resident concentration
// in the block — how strongly the block is dominated by any single
// sub-dataset. Blocks near 1 are content-clustered; blocks near 0 are
// well mixed and gain little from extra replicas.
func (b *BlockMeta) DominantConcentration() float64 {
	if b.rawBytes <= 0 {
		return 0
	}
	var max int64
	for _, sz := range b.hash {
		if sz > max {
			max = sz
		}
	}
	c := float64(max) / float64(b.rawBytes)
	if c > 1 {
		c = 1
	}
	return c
}

// HeatProfile returns the per-block concentration of sub over the whole
// array, in block order (length Len()). Scaled by observed access counts
// this is the heat signal placement.BlockInfo consumes.
func (a *Array) HeatProfile(sub string) []float64 {
	out := make([]float64, len(a.metas))
	for i, m := range a.metas {
		out[i] = m.Concentration(sub)
	}
	return out
}
