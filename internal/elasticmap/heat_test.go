package elasticmap

import (
	"math"
	"testing"

	"datanet/internal/records"
)

func TestConcentration(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())

	// hero dominates block 0: hash-resident, so concentration is exact.
	truth0 := float64(records.BySub(blocks[0])["hero"]) / float64(records.TotalSize(blocks[0]))
	if got := arr.Block(0).Concentration("hero"); math.Abs(got-truth0) > 1e-12 {
		t.Errorf("block-0 hero concentration = %v, want %v", got, truth0)
	}
	// hero is tiny in block 1: Bloom-resident δ approximation, but still
	// positive and below the dominant share.
	c1 := arr.Block(1).Concentration("hero")
	if c1 <= 0 || c1 >= arr.Block(1).Concentration("bg-0") {
		t.Errorf("block-1 hero concentration = %v, want small positive", c1)
	}
	// Absent sub-datasets are stone cold.
	if got := arr.Block(0).Concentration("no-such-sub"); got != 0 {
		t.Errorf("absent sub concentration = %v, want 0", got)
	}
}

func TestConcentrationClamped(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	for i := 0; i < arr.Len(); i++ {
		for _, sub := range []string{"hero", "bg-0", "bg-1"} {
			if c := arr.Block(i).Concentration(sub); c < 0 || c > 1 {
				t.Errorf("block %d %s concentration %v outside [0,1]", i, sub, c)
			}
		}
	}
}

func TestDominantConcentration(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	// Block 0 is content-clustered around hero; its dominant concentration
	// is hero's exact share. Block 1 is dominated by bg-0.
	if got, want := arr.Block(0).DominantConcentration(), arr.Block(0).Concentration("hero"); got != want {
		t.Errorf("block-0 dominant = %v, want hero's %v", got, want)
	}
	if got, want := arr.Block(1).DominantConcentration(), arr.Block(1).Concentration("bg-0"); got != want {
		t.Errorf("block-1 dominant = %v, want bg-0's %v", got, want)
	}
	var empty BlockMeta
	if got := empty.DominantConcentration(); got != 0 {
		t.Errorf("empty block dominant = %v, want 0", got)
	}
}

func TestHeatProfile(t *testing.T) {
	blocks := twoBlockFixture()
	arr := Build(blocks, fixtureOpts())
	prof := arr.HeatProfile("hero")
	if len(prof) != arr.Len() {
		t.Fatalf("profile length %d, want %d", len(prof), arr.Len())
	}
	for i := range prof {
		if want := arr.Block(i).Concentration("hero"); prof[i] != want {
			t.Errorf("profile[%d] = %v, want Concentration %v", i, prof[i], want)
		}
	}
	// The hot block must stand out — that's the signal placement consumes.
	if prof[0] <= prof[1] {
		t.Errorf("profile %v: block 0 should be hotter than block 1", prof)
	}
}
