package elasticmap

import (
	"math"

	"datanet/internal/bloom"
	"datanet/internal/records"
)

// Class says where a queried sub-dataset was found in a block's meta-data.
type Class int

// Query outcomes.
const (
	// Absent: the block holds no data of the sub-dataset (modulo the Bloom
	// filter's false-positive rate).
	Absent Class = iota
	// Bloomed: the sub-dataset is non-dominant in this block; only its
	// existence is recorded and its size approximated by Delta.
	Bloomed
	// Hashed: the sub-dataset is dominant in this block; its exact byte
	// count is stored.
	Hashed
)

func (c Class) String() string {
	switch c {
	case Hashed:
		return "hashed"
	case Bloomed:
		return "bloomed"
	default:
		return "absent"
	}
}

// Options configures ElasticMap construction.
type Options struct {
	// Alpha is the target fraction of a block's sub-datasets stored in the
	// hash map (paper Eq. 5; experiments sweep 0.1–1.0, default 0.3 as in
	// §V-A). Ignored when MemoryBudgetBits > 0.
	Alpha float64
	// MemoryBudgetBits, when positive, picks the largest hash-map share
	// whose Eq.-5 cost fits the budget ("store all the meta-data into the
	// hash map when the memory is large enough and most of the information
	// into the bloom filter when the memory is limited").
	MemoryBudgetBits int64
	// FPRate is the Bloom filter's false-positive target ε (default 0.01,
	// ≈10 bits/item as quoted in the paper).
	FPRate float64
	// HashEntryBits is the per-entry hash map cost k in Eq. 5 (default 85
	// bits, the paper's "typical configuration").
	HashEntryBits int
	// LoadFactor is the hash map load factor δ in Eq. 5 (default 0.75).
	LoadFactor float64
	// BucketBounds overrides the Fibonacci bucket lower bounds (ablation
	// hook); nil uses FibonacciBounds(block size or 64 MiB).
	BucketBounds []int64
}

// DefaultAlpha matches the paper's evaluation setting (§V-A: α = 0.3).
const DefaultAlpha = 0.3

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Alpha > 1 {
		o.Alpha = 1
	}
	if o.FPRate <= 0 || o.FPRate >= 1 {
		o.FPRate = 0.01
	}
	if o.HashEntryBits <= 0 {
		o.HashEntryBits = 85
	}
	if o.LoadFactor <= 0 || o.LoadFactor > 1 {
		o.LoadFactor = 0.75
	}
	return o
}

// CostBits evaluates paper Eq. 5 for m sub-datasets at hash share alpha:
// m·(1−α)·(−ln ε)/ln²2 + m·α·k/δ.
func (o Options) CostBits(m int, alpha float64) float64 {
	o = o.withDefaults()
	fm := float64(m)
	return fm*(1-alpha)*bloom.BitsPerItem(o.FPRate) + fm*alpha*float64(o.HashEntryBits)/o.LoadFactor
}

// alphaForBudget inverts Eq. 5: the largest α in [0,1] whose cost fits the
// budget, or 0 when even a pure-Bloom layout does not fit.
func (o Options) alphaForBudget(m int) float64 {
	o = o.withDefaults()
	if m == 0 {
		return 1
	}
	budget := float64(o.MemoryBudgetBits)
	bloomBits := bloom.BitsPerItem(o.FPRate)
	hashBits := float64(o.HashEntryBits) / o.LoadFactor
	// cost(α) = m·bloomBits + m·α·(hashBits − bloomBits); solve for α.
	base := float64(m) * bloomBits
	slope := float64(m) * (hashBits - bloomBits)
	if slope <= 0 {
		return 1
	}
	alpha := (budget - base) / slope
	if alpha < 0 {
		return 0
	}
	if alpha > 1 {
		return 1
	}
	return alpha
}

// BlockMeta is one block's ElasticMap: exact sizes for dominant
// sub-datasets, Bloom-filtered existence for the rest.
type BlockMeta struct {
	hash   map[string]int64
	filter *bloom.Filter
	// delta is the Eq.-6 δ: the approximate per-block size attributed to a
	// Bloom-resident sub-dataset (the smallest size value seen among them,
	// falling back to the smallest hashed size when the filter is empty).
	delta int64
	// rawBytes is the block's total record footprint.
	rawBytes int64
	// numSubs and numHashed record the split for memory accounting.
	numSubs   int
	numHashed int
	// threshold is the dominance cut actually applied (bytes).
	threshold int64
	opts      Options
}

// BuildBlockMeta scans one block's records once and constructs its
// ElasticMap. This is the paper's Algorithm of §III-B: bucket statistics
// during the scan, then a threshold chosen from the bucket counts (no
// sort), then a split into hash map and Bloom filter.
func BuildBlockMeta(recs []records.Record, opts Options) *BlockMeta {
	opts = opts.withDefaults()
	bounds := opts.BucketBounds
	if bounds == nil {
		bounds = FibonacciBounds(64 << 20)
	}
	sep := NewSeparator(bounds)
	var raw int64
	for _, r := range recs {
		sz := r.Size()
		raw += sz
		sep.Observe(r.Sub, sz)
	}
	return buildFromSeparator(sep, raw, opts)
}

func buildFromSeparator(sep *Separator, rawBytes int64, opts Options) *BlockMeta {
	m := sep.NumSubs()
	alpha := opts.Alpha
	if opts.MemoryBudgetBits > 0 {
		alpha = opts.alphaForBudget(m)
	}
	threshold, _ := sep.ThresholdForFraction(alpha)
	dom, non := sep.Split(threshold)

	meta := &BlockMeta{
		hash:      dom,
		rawBytes:  rawBytes,
		numSubs:   m,
		numHashed: len(dom),
		threshold: threshold,
		opts:      opts,
	}
	nBloom := len(non)
	if nBloom == 0 {
		nBloom = 1 // allocate a minimal filter so queries are uniform
	}
	meta.filter = bloom.NewWithEstimates(uint64(nBloom), opts.FPRate)
	minNon := int64(math.MaxInt64)
	for sub, sz := range non {
		meta.filter.AddString(sub)
		if sz < minNon {
			minNon = sz
		}
	}
	if len(non) == 0 {
		// δ falls back to the smallest hashed size, as in Eq. 6's
		// definition ("the smallest size value of |s ∩ b_j|").
		for _, sz := range dom {
			if sz < minNon {
				minNon = sz
			}
		}
	}
	if minNon == math.MaxInt64 {
		minNon = 0
	}
	meta.delta = minNon
	return meta
}

// Query returns the recorded size and classification of sub in this block.
// For Bloomed results the size is the δ approximation.
func (b *BlockMeta) Query(sub string) (int64, Class) {
	if sz, ok := b.hash[sub]; ok {
		return sz, Hashed
	}
	if b.filter.TestString(sub) {
		return b.delta, Bloomed
	}
	return 0, Absent
}

// Delta returns the per-block approximation δ used for Bloom-resident
// sub-datasets.
func (b *BlockMeta) Delta() int64 { return b.delta }

// RawBytes returns the block's total record footprint.
func (b *BlockMeta) RawBytes() int64 { return b.rawBytes }

// NumSubs returns the number of distinct sub-datasets in the block.
func (b *BlockMeta) NumSubs() int { return b.numSubs }

// NumHashed returns how many sub-datasets were classified dominant.
func (b *BlockMeta) NumHashed() int { return b.numHashed }

// Threshold returns the dominance cut in bytes.
func (b *BlockMeta) Threshold() int64 { return b.threshold }

// HashedAlpha returns the realized hash-map share.
func (b *BlockMeta) HashedAlpha() float64 {
	if b.numSubs == 0 {
		return 0
	}
	return float64(b.numHashed) / float64(b.numSubs)
}

// MemoryBits returns the actual meta-data footprint: Bloom bitmap size
// plus hash entries at the configured per-entry cost and load factor.
func (b *BlockMeta) MemoryBits() int64 {
	opts := b.opts.withDefaults()
	hashBits := int64(float64(b.numHashed) * float64(opts.HashEntryBits) / opts.LoadFactor)
	return hashBits + int64(b.filter.SizeBits())
}

// ModelCostBits returns the Eq.-5 prediction for this block's realized α.
func (b *BlockMeta) ModelCostBits() float64 {
	return b.opts.CostBits(b.numSubs, b.HashedAlpha())
}

// Hashed returns a copy of the dominant sub-dataset sizes.
func (b *BlockMeta) Hashed() map[string]int64 {
	out := make(map[string]int64, len(b.hash))
	for k, v := range b.hash {
		out[k] = v
	}
	return out
}
