package elasticmap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"datanet/internal/bloom"
)

// The paper notes meta-data may outgrow memory and "can be stored into a
// database or distributed among multiple machines" (future work). This
// codec implements the persistence half: a compact binary encoding of an
// ElasticMap array that cmd/datanet uses to save and reload meta-data.

var (
	codecMagic = [4]byte{'D', 'N', 'E', '1'}
	// ErrCodec reports a malformed encoded array.
	ErrCodec = errors.New("elasticmap: corrupt encoding")
)

// Encode serializes the array.
func Encode(a *Array) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(codecMagic[:])
	putUvarint(&buf, uint64(len(a.metas)))
	putFloat(&buf, a.opts.Alpha)
	putFloat(&buf, a.opts.FPRate)
	putUvarint(&buf, uint64(a.opts.HashEntryBits))
	putFloat(&buf, a.opts.LoadFactor)
	for _, m := range a.metas {
		if err := encodeMeta(&buf, m); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

func encodeMeta(buf *bytes.Buffer, m *BlockMeta) error {
	putUvarint(buf, uint64(m.numSubs))
	putUvarint(buf, uint64(m.numHashed))
	putVarint(buf, m.threshold)
	putVarint(buf, m.delta)
	putVarint(buf, m.rawBytes)
	putUvarint(buf, uint64(len(m.hash)))
	for sub, sz := range m.hash {
		putUvarint(buf, uint64(len(sub)))
		buf.WriteString(sub)
		putVarint(buf, sz)
	}
	fb, err := m.filter.MarshalBinary()
	if err != nil {
		return err
	}
	putUvarint(buf, uint64(len(fb)))
	buf.Write(fb)
	return nil
}

// Decode reconstructs an array produced by Encode.
func Decode(data []byte) (*Array, error) {
	r := bytes.NewReader(data)
	var hdr [4]byte
	if _, err := r.Read(hdr[:]); err != nil || hdr != codecMagic {
		return nil, ErrCodec
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, ErrCodec
	}
	// A block's encoding occupies several bytes at minimum; reject counts
	// the input cannot possibly hold before allocating from them.
	if n > uint64(r.Len()) {
		return nil, ErrCodec
	}
	var opts Options
	if opts.Alpha, err = getFloat(r); err != nil {
		return nil, ErrCodec
	}
	if opts.FPRate, err = getFloat(r); err != nil {
		return nil, ErrCodec
	}
	heb, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, ErrCodec
	}
	opts.HashEntryBits = int(heb)
	if opts.LoadFactor, err = getFloat(r); err != nil {
		return nil, ErrCodec
	}
	metas := make([]*BlockMeta, n)
	for i := range metas {
		m, err := decodeMeta(r, opts)
		if err != nil {
			return nil, fmt.Errorf("%w (block %d)", err, i)
		}
		metas[i] = m
	}
	return FromMetas(metas, opts), nil
}

func decodeMeta(r *bytes.Reader, opts Options) (*BlockMeta, error) {
	m := &BlockMeta{opts: opts}
	var err error
	var u uint64
	if u, err = binary.ReadUvarint(r); err != nil {
		return nil, ErrCodec
	}
	m.numSubs = int(u)
	if u, err = binary.ReadUvarint(r); err != nil {
		return nil, ErrCodec
	}
	m.numHashed = int(u)
	if m.threshold, err = binary.ReadVarint(r); err != nil {
		return nil, ErrCodec
	}
	if m.delta, err = binary.ReadVarint(r); err != nil {
		return nil, ErrCodec
	}
	if m.rawBytes, err = binary.ReadVarint(r); err != nil {
		return nil, ErrCodec
	}
	if u, err = binary.ReadUvarint(r); err != nil {
		return nil, ErrCodec
	}
	nHash := int(u)
	// Every hash entry consumes at least two bytes of input, so any count
	// beyond the remaining length is corrupt — and, crucially, must be
	// rejected *before* sizing allocations from attacker-controlled data.
	if nHash < 0 || nHash > r.Len()/2 {
		return nil, ErrCodec
	}
	m.hash = make(map[string]int64, nHash)
	for j := 0; j < nHash; j++ {
		if u, err = binary.ReadUvarint(r); err != nil || u > uint64(r.Len()) {
			return nil, ErrCodec
		}
		name := make([]byte, u)
		if _, err = readFull(r, name); err != nil {
			return nil, ErrCodec
		}
		var sz int64
		if sz, err = binary.ReadVarint(r); err != nil {
			return nil, ErrCodec
		}
		m.hash[string(name)] = sz
	}
	if u, err = binary.ReadUvarint(r); err != nil || u > uint64(r.Len()) {
		return nil, ErrCodec
	}
	fb := make([]byte, u)
	if _, err = readFull(r, fb); err != nil {
		return nil, ErrCodec
	}
	m.filter = new(bloom.Filter)
	if err = m.filter.UnmarshalBinary(fb); err != nil {
		return nil, ErrCodec
	}
	return m, nil
}

func readFull(r *bytes.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		k, err := r.Read(p[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putFloat(buf *bytes.Buffer, f float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	buf.Write(tmp[:])
}

func getFloat(r *bytes.Reader) (float64, error) {
	var tmp [8]byte
	if _, err := readFull(r, tmp[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(tmp[:])), nil
}
