package elasticmap

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"datanet/internal/records"
)

// block builds a synthetic block: nBig dominant subs of bigSize bytes
// (payload-adjusted) and nSmall non-dominant subs of smallSize bytes.
func block(nBig int, bigSize int, nSmall int, smallSize int) []records.Record {
	var recs []records.Record
	pay := func(total int) string {
		n := total - 16 - 8 // overhead + key length ≈
		if n < 0 {
			n = 0
		}
		return strings.Repeat("x", n)
	}
	for i := 0; i < nBig; i++ {
		recs = append(recs, records.Record{Sub: fmt.Sprintf("big-%03d", i), Payload: pay(bigSize)})
	}
	for i := 0; i < nSmall; i++ {
		recs = append(recs, records.Record{Sub: fmt.Sprintf("sml-%03d", i), Payload: pay(smallSize)})
	}
	return recs
}

func testOpts(alpha float64) Options {
	return Options{Alpha: alpha, BucketBounds: []int64{0, 64, 128, 256, 512, 1024, 4096, 16384}}
}

func TestBuildBlockMetaSplit(t *testing.T) {
	recs := block(5, 2000, 45, 100)
	meta := BuildBlockMeta(recs, testOpts(0.1)) // target: 5 of 50 hashed
	if meta.NumSubs() != 50 {
		t.Fatalf("NumSubs = %d", meta.NumSubs())
	}
	if meta.NumHashed() != 5 {
		t.Fatalf("NumHashed = %d, want 5 (the dominant subs)", meta.NumHashed())
	}
	truth := records.BySub(recs)
	for i := 0; i < 5; i++ {
		sub := fmt.Sprintf("big-%03d", i)
		sz, class := meta.Query(sub)
		if class != Hashed {
			t.Errorf("%s class = %v, want Hashed", sub, class)
		}
		if sz != truth[sub] {
			t.Errorf("%s size = %d, want exact %d", sub, sz, truth[sub])
		}
	}
	for i := 0; i < 45; i++ {
		sub := fmt.Sprintf("sml-%03d", i)
		sz, class := meta.Query(sub)
		if class != Bloomed {
			t.Errorf("%s class = %v, want Bloomed", sub, class)
		}
		if sz != meta.Delta() {
			t.Errorf("%s size = %d, want δ=%d", sub, sz, meta.Delta())
		}
	}
}

// The ElasticMap must never lose a sub-dataset entirely: every sub present
// in the block is either hashed or (at least) bloom-visible.
func TestNoSubLost(t *testing.T) {
	recs := block(3, 1500, 30, 80)
	for _, alpha := range []float64{0.05, 0.3, 0.7, 1.0} {
		meta := BuildBlockMeta(recs, testOpts(alpha))
		for sub := range records.BySub(recs) {
			if _, class := meta.Query(sub); class == Absent {
				t.Errorf("alpha=%g: sub %s lost", alpha, sub)
			}
		}
	}
}

func TestAlphaOneHashesEverything(t *testing.T) {
	recs := block(3, 1500, 30, 80)
	meta := BuildBlockMeta(recs, testOpts(1.0))
	if meta.NumHashed() != meta.NumSubs() {
		t.Errorf("alpha=1 hashed %d of %d", meta.NumHashed(), meta.NumSubs())
	}
	if meta.HashedAlpha() != 1 {
		t.Errorf("HashedAlpha = %g", meta.HashedAlpha())
	}
	truth := records.BySub(recs)
	for sub, want := range truth {
		if sz, class := meta.Query(sub); class != Hashed || sz != want {
			t.Errorf("%s: (%d, %v), want exact (%d, Hashed)", sub, sz, class, want)
		}
	}
}

func TestDeltaIsMinNonDominant(t *testing.T) {
	recs := block(2, 4000, 10, 120)
	meta := BuildBlockMeta(recs, testOpts(0.2))
	truth := records.BySub(recs)
	min := int64(1 << 62)
	for sub, sz := range truth {
		if strings.HasPrefix(sub, "sml-") && sz < min {
			min = sz
		}
	}
	if meta.Delta() != min {
		t.Errorf("Delta = %d, want smallest non-dominant %d", meta.Delta(), min)
	}
}

func TestDeltaFallsBackToHashedMin(t *testing.T) {
	recs := block(4, 1000, 0, 0)
	meta := BuildBlockMeta(recs, testOpts(1.0))
	truth := records.BySub(recs)
	min := int64(1 << 62)
	for _, sz := range truth {
		if sz < min {
			min = sz
		}
	}
	if meta.Delta() != min {
		t.Errorf("Delta = %d, want hashed min %d", meta.Delta(), min)
	}
}

func TestQueryAbsent(t *testing.T) {
	meta := BuildBlockMeta(block(2, 1000, 5, 100), testOpts(0.3))
	// Probing many absent keys: the 1% FP rate means almost all must
	// report Absent.
	absent := 0
	for i := 0; i < 1000; i++ {
		if _, class := meta.Query(fmt.Sprintf("nope-%d", i)); class == Absent {
			absent++
		}
	}
	if absent < 950 {
		t.Errorf("only %d/1000 absent probes reported Absent", absent)
	}
}

func TestEmptyBlock(t *testing.T) {
	meta := BuildBlockMeta(nil, testOpts(0.3))
	if meta.NumSubs() != 0 || meta.RawBytes() != 0 || meta.Delta() != 0 {
		t.Errorf("empty block meta: %+v", meta)
	}
	if _, class := meta.Query("anything"); class == Hashed {
		t.Error("empty block cannot hash anything")
	}
}

func TestCostBitsEquation5(t *testing.T) {
	opts := Options{FPRate: 0.01, HashEntryBits: 85, LoadFactor: 0.75}
	// Eq. 5 at α=0: pure Bloom; at α=1: pure hash.
	m := 1000
	bloomOnly := opts.CostBits(m, 0)
	hashOnly := opts.CostBits(m, 1)
	if bloomOnly >= hashOnly {
		t.Errorf("bloom-only (%g) should be cheaper than hash-only (%g)", bloomOnly, hashOnly)
	}
	// Paper's example: ~10 bits vs ~85/δ≈113 bits per sub-dataset.
	perSubBloom := bloomOnly / float64(m)
	if perSubBloom < 9 || perSubBloom > 10 {
		t.Errorf("bloom bits/sub = %g, want ≈9.6", perSubBloom)
	}
	perSubHash := hashOnly / float64(m)
	if perSubHash < 110 || perSubHash > 115 {
		t.Errorf("hash bits/sub = %g, want ≈113", perSubHash)
	}
	// Monotone in α.
	prev := -1.0
	for a := 0.0; a <= 1.0; a += 0.1 {
		c := opts.CostBits(m, a)
		if c < prev {
			t.Fatalf("cost not monotone at α=%g", a)
		}
		prev = c
	}
}

func TestMemoryBudgetPicksAlpha(t *testing.T) {
	recs := block(5, 2000, 45, 100)
	// A huge budget hashes everything.
	rich := BuildBlockMeta(recs, Options{MemoryBudgetBits: 1 << 30, BucketBounds: testOpts(0).BucketBounds})
	if rich.HashedAlpha() != 1 {
		t.Errorf("rich budget α = %g, want 1", rich.HashedAlpha())
	}
	// A tiny budget hashes (almost) nothing.
	poor := BuildBlockMeta(recs, Options{MemoryBudgetBits: 1, BucketBounds: testOpts(0).BucketBounds})
	if poor.NumHashed() > rich.NumHashed()/5 {
		t.Errorf("poor budget hashed %d, rich %d", poor.NumHashed(), rich.NumHashed())
	}
	// Budget respected by the Eq.-5 model for the realized α.
	mid := BuildBlockMeta(recs, Options{MemoryBudgetBits: 2000, BucketBounds: testOpts(0).BucketBounds})
	if model := mid.ModelCostBits(); model > 2000*1.25 {
		t.Errorf("model cost %g blows the 2000-bit budget", model)
	}
}

func TestMemoryBitsPositiveAndOrdered(t *testing.T) {
	recs := block(5, 2000, 45, 100)
	lo := BuildBlockMeta(recs, testOpts(0.1))
	hi := BuildBlockMeta(recs, testOpts(1.0))
	if lo.MemoryBits() <= 0 || hi.MemoryBits() <= 0 {
		t.Fatal("memory must be positive")
	}
	if lo.MemoryBits() >= hi.MemoryBits() {
		t.Errorf("α=0.1 memory (%d) should undercut α=1 (%d)", lo.MemoryBits(), hi.MemoryBits())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != DefaultAlpha || o.FPRate != 0.01 || o.HashEntryBits != 85 || o.LoadFactor != 0.75 {
		t.Errorf("defaults = %+v", o)
	}
	clamped := Options{Alpha: 7}.withDefaults()
	if clamped.Alpha != 1 {
		t.Errorf("alpha not clamped: %g", clamped.Alpha)
	}
}

func TestClassString(t *testing.T) {
	if Hashed.String() != "hashed" || Bloomed.String() != "bloomed" || Absent.String() != "absent" {
		t.Error("Class.String() wrong")
	}
}

// Property: hashed sizes are always exact, and the hashed set is exactly
// the subs at or above the threshold.
func TestHashedExactQuick(t *testing.T) {
	f := func(sizes []uint16, alphaRaw uint8) bool {
		var recs []records.Record
		for i, s := range sizes {
			n := int(s) % 600
			recs = append(recs, records.Record{Sub: fmt.Sprintf("q%d", i%11), Payload: strings.Repeat("z", n)})
		}
		alpha := float64(alphaRaw%101) / 100
		if alpha == 0 {
			alpha = 0.3
		}
		meta := BuildBlockMeta(recs, testOpts(alpha))
		truth := records.BySub(recs)
		for sub, want := range truth {
			sz, class := meta.Query(sub)
			switch class {
			case Hashed:
				if sz != want || want < meta.Threshold() {
					return false
				}
			case Bloomed:
				if want >= meta.Threshold() {
					return false
				}
			case Absent:
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
