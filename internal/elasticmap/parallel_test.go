package elasticmap

import (
	"fmt"
	"strings"
	"testing"

	"datanet/internal/records"
)

func manyBlocks(n int) [][]records.Record {
	out := make([][]records.Record, n)
	for b := range out {
		var recs []records.Record
		for i := 0; i < 30; i++ {
			recs = append(recs, records.Record{
				Sub:     fmt.Sprintf("s%02d", (b*7+i)%19),
				Payload: strings.Repeat("p", (i%11)*50),
			})
		}
		out[b] = recs
	}
	return out
}

// Parallel construction must be bit-identical to sequential.
func TestBuildParallelMatchesSequential(t *testing.T) {
	blocks := manyBlocks(40)
	opts := testOpts(0.3)
	seq := Build(blocks, opts)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		par := BuildParallel(blocks, opts, workers)
		if par.Len() != seq.Len() {
			t.Fatalf("workers=%d: len %d vs %d", workers, par.Len(), seq.Len())
		}
		for b := 0; b < seq.Len(); b++ {
			for i := 0; i < 19; i++ {
				sub := fmt.Sprintf("s%02d", i)
				s1, c1 := seq.Block(b).Query(sub)
				s2, c2 := par.Block(b).Query(sub)
				if s1 != s2 || c1 != c2 {
					t.Fatalf("workers=%d block=%d sub=%s: (%d,%v) vs (%d,%v)",
						workers, b, sub, s1, c1, s2, c2)
				}
			}
		}
	}
}

func TestAppendExtends(t *testing.T) {
	blocks := manyBlocks(10)
	arr := Build(blocks[:6], testOpts(0.3))
	arr.Append(blocks[6:])
	if arr.Len() != 10 {
		t.Fatalf("Len = %d after append", arr.Len())
	}
	whole := Build(blocks, testOpts(0.3))
	for i := 0; i < 19; i++ {
		sub := fmt.Sprintf("s%02d", i)
		if arr.Estimate(sub) != whole.Estimate(sub) {
			t.Errorf("append diverges for %s: %d vs %d", sub, arr.Estimate(sub), whole.Estimate(sub))
		}
	}
}

func TestMerge(t *testing.T) {
	blocks := manyBlocks(8)
	a := Build(blocks[:3], testOpts(0.3))
	b := Build(blocks[3:], testOpts(0.3))
	m := Merge(a, b)
	if m.Len() != 8 {
		t.Fatalf("merged Len = %d", m.Len())
	}
	whole := Build(blocks, testOpts(0.3))
	for i := 0; i < 19; i++ {
		sub := fmt.Sprintf("s%02d", i)
		if m.Estimate(sub) != whole.Estimate(sub) {
			t.Errorf("merge diverges for %s", sub)
		}
	}
	// Inputs untouched.
	if a.Len() != 3 || b.Len() != 5 {
		t.Error("merge mutated its inputs")
	}
}

func TestIndex(t *testing.T) {
	blocks := manyBlocks(12)
	arr := Build(blocks, testOpts(0.5))
	idx := NewIndex(arr)
	if idx.DominantSubs() == 0 {
		t.Fatal("no dominant subs indexed")
	}
	for i := 0; i < 19; i++ {
		sub := fmt.Sprintf("s%02d", i)
		// The inverted view must agree with per-block queries on hashed
		// entries exactly.
		var want int64
		var wantBlocks int
		for b := 0; b < arr.Len(); b++ {
			if sz, class := arr.Block(b).Query(sub); class == Hashed {
				want += sz
				wantBlocks++
			}
		}
		got := idx.EstimateDominant(sub)
		if got != want {
			t.Errorf("%s: EstimateDominant %d, want %d", sub, got, want)
		}
		if len(idx.DominantDistribution(sub)) != wantBlocks {
			t.Errorf("%s: distribution blocks %d, want %d", sub, len(idx.DominantDistribution(sub)), wantBlocks)
		}
		// Dominant estimate is a lower bound on Eq. 6.
		if got > arr.Estimate(sub) {
			t.Errorf("%s: dominant %d exceeds Eq.6 %d", sub, got, arr.Estimate(sub))
		}
	}
	if idx.DominantDistribution("nope") != nil {
		t.Error("unknown sub should return nil")
	}
}

func TestIndexTop(t *testing.T) {
	blocks := manyBlocks(12)
	arr := Build(blocks, testOpts(0.5))
	idx := NewIndex(arr)
	top := idx.Top(5)
	if len(top) != 5 {
		t.Fatalf("Top(5) = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Bytes > top[i-1].Bytes {
			t.Fatal("Top not sorted descending")
		}
	}
	if top[0].Bytes != idx.EstimateDominant(top[0].Sub) {
		t.Error("Top bytes disagree with EstimateDominant")
	}
	if got := idx.Top(0); len(got) != 0 {
		t.Errorf("Top(0) = %v", got)
	}
	if got := idx.Top(-3); len(got) != 0 {
		t.Errorf("Top(-3) = %v", got)
	}
	all := idx.Top(1 << 20)
	if len(all) != idx.DominantSubs() {
		t.Errorf("Top(huge) = %d, want %d", len(all), idx.DominantSubs())
	}
}
