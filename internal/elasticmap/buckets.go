// Package elasticmap implements DataNet's meta-data layer (paper §III):
//
//   - a single-scan, linear-time *dominant sub-dataset separator* based on
//     bucket/count-sorting with Fibonacci-spaced size intervals, which
//     classifies sub-datasets by their per-block footprint without sorting;
//   - *ElasticMap*, the per-block structure that stores dominant
//     sub-dataset sizes exactly in a hash map and non-dominant ones
//     approximately in a Bloom filter, with the Eq.-5 memory model;
//   - the *ElasticMap array* over all blocks of a file, the Eq.-6 total
//     size estimator, and the accuracy metric χ of §V-B.
package elasticmap

import (
	"math"
	"sort"
)

// KiB is one kilobyte; the paper's bucket bounds are expressed in KB.
const KiB = 1024

// FibonacciBounds returns the ascending bucket *lower* bounds the paper
// proposes: (0,1kb),[1kb,2kb),[2kb,3kb),[3kb,5kb),[5kb,8kb)… growing until
// max is covered. Larger sizes get sparser intervals because content
// clustering puts few sub-datasets there.
func FibonacciBounds(max int64) []int64 {
	return FibonacciBoundsUnit(max, KiB)
}

// FibonacciBoundsUnit generalizes FibonacciBounds to an arbitrary base
// interval. The paper's 1 kb unit suits its 64 MB blocks; simulations with
// smaller blocks scale the unit proportionally (unit ≈ max/65536 keeps the
// same relative resolution) so the dominant/non-dominant cut stays as
// sharp as at paper scale.
func FibonacciBoundsUnit(max, unit int64) []int64 {
	if unit <= 0 {
		unit = KiB
	}
	bounds := []int64{0}
	a, b := int64(1), int64(2)
	for a*unit < max {
		bounds = append(bounds, a*unit)
		a, b = b, a+b
	}
	bounds = append(bounds, a*unit)
	return bounds
}

// ScaledFibonacciBounds picks the Fibonacci unit that gives a block of the
// given size the same relative bucket resolution the paper's 1 kb unit
// gives a 64 MB block.
func ScaledFibonacciBounds(blockSize int64) []int64 {
	unit := blockSize / 65536
	if unit < 1 {
		unit = 1
	}
	return FibonacciBoundsUnit(blockSize, unit)
}

// UniformBounds returns n equal-width bucket lower bounds over [0, max);
// used by the bucket-shape ablation.
func UniformBounds(max int64, n int) []int64 {
	if n <= 0 {
		n = 1
	}
	bounds := make([]int64, n)
	for i := range bounds {
		bounds[i] = max * int64(i) / int64(n)
	}
	return bounds
}

// PowerOfTwoBounds returns lower bounds 0,1k,2k,4k,8k,… ; the second
// bucket-shape ablation.
func PowerOfTwoBounds(max int64) []int64 {
	bounds := []int64{0}
	for b := int64(KiB); b < max; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Separator performs the paper's single-scan dominant/non-dominant
// classification. Observe is O(1) amortized per record (hash update plus a
// forward bucket adjustment), so scanning a block of m sub-datasets costs
// O(records), matching the paper's O(m·n) bound for n blocks.
type Separator struct {
	bounds   []int64 // ascending bucket lower bounds; bounds[0] must be 0
	sizes    map[string]int64
	bucketOf map[string]int
	counts   []int
}

// NewSeparator creates a separator over the given ascending lower bounds.
// Passing nil uses FibonacciBounds(64 MiB).
func NewSeparator(bounds []int64) *Separator {
	if len(bounds) == 0 {
		bounds = FibonacciBounds(64 << 20)
	}
	cp := append([]int64(nil), bounds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	if cp[0] != 0 {
		cp = append([]int64{0}, cp...)
	}
	return &Separator{
		bounds:   cp,
		sizes:    make(map[string]int64),
		bucketOf: make(map[string]int),
		counts:   make([]int, len(cp)),
	}
}

// bucketIndex returns the bucket holding size: the largest i with
// bounds[i] <= size.
func (s *Separator) bucketIndex(size int64) int {
	// sort.Search finds the first bound > size; the bucket is one left.
	i := sort.Search(len(s.bounds), func(i int) bool { return s.bounds[i] > size })
	return i - 1
}

// Observe accounts `bytes` more data for sub-dataset sub. Buckets only move
// forward because sizes are monotone within a scan.
func (s *Separator) Observe(sub string, bytes int64) {
	newSize := s.sizes[sub] + bytes
	s.sizes[sub] = newSize
	cur, seen := s.bucketOf[sub]
	nb := s.bucketIndex(newSize)
	if !seen {
		s.bucketOf[sub] = nb
		s.counts[nb]++
		return
	}
	if nb != cur {
		s.counts[cur]--
		s.counts[nb]++
		s.bucketOf[sub] = nb
	}
}

// NumSubs returns the number of distinct sub-datasets observed.
func (s *Separator) NumSubs() int { return len(s.sizes) }

// Sizes exposes the accumulated per-sub byte counts (shared map; callers
// must not mutate it).
func (s *Separator) Sizes() map[string]int64 { return s.sizes }

// BucketCounts returns a copy of the per-bucket sub-dataset counts.
func (s *Separator) BucketCounts() []int {
	return append([]int(nil), s.counts...)
}

// Bounds returns a copy of the bucket lower bounds.
func (s *Separator) Bounds() []int64 {
	return append([]int64(nil), s.bounds...)
}

// ThresholdForCount returns the smallest bucket lower bound such that the
// buckets at or above it contain at most target sub-datasets, walking the
// bucket statistics from the top (no sorting of sub-datasets, the paper's
// key efficiency claim). The boolean result is false when even the highest
// bucket exceeds target (callers may still hash that bucket or none).
//
// target >= NumSubs yields threshold 0 (hash everything); target <= 0
// yields an unreachable threshold (hash nothing). The top bucket is
// unbounded above, so "exclude it" must use an infinite threshold, not the
// last bound.
func (s *Separator) ThresholdForCount(target int) (int64, bool) {
	if target <= 0 {
		return math.MaxInt64, true
	}
	cum := 0
	for i := len(s.counts) - 1; i >= 0; i-- {
		if cum+s.counts[i] > target {
			if i == len(s.counts)-1 {
				// Even the top bucket alone is too big.
				return math.MaxInt64, false
			}
			return s.bounds[i+1], true
		}
		cum += s.counts[i]
	}
	return 0, true
}

// ThresholdForFraction is ThresholdForCount with target = ceil(alpha * m).
func (s *Separator) ThresholdForFraction(alpha float64) (int64, bool) {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	target := int(alpha*float64(s.NumSubs()) + 0.999999)
	return s.ThresholdForCount(target)
}

// Split partitions the observed sub-datasets by threshold: sizes >=
// threshold are dominant (destined for the hash map), the rest are
// non-dominant (destined for the Bloom filter).
func (s *Separator) Split(threshold int64) (dominant map[string]int64, nonDominant map[string]int64) {
	dominant = make(map[string]int64)
	nonDominant = make(map[string]int64)
	for sub, sz := range s.sizes {
		if sz >= threshold {
			dominant[sub] = sz
		} else {
			nonDominant[sub] = sz
		}
	}
	return dominant, nonDominant
}
