package elasticmap

import (
	"runtime"
	"sort"
	"sync"

	"datanet/internal/records"
)

// BuildParallel constructs the ElasticMap array scanning blocks
// concurrently with up to `workers` goroutines (NumCPU when workers <= 0).
// Each block's meta-data is independent, so the build parallelizes
// embarrassingly; results are identical to Build for the same inputs.
//
// On the master node of a real deployment this is the construction path:
// the single sequential scan the paper counts (O(records) work) spread
// over cores.
func BuildParallel(blocks [][]records.Record, opts Options, workers int) *Array {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	metas := make([]*BlockMeta, len(blocks))
	if workers <= 1 {
		for i, recs := range blocks {
			metas[i] = BuildBlockMeta(recs, opts)
		}
		return FromMetas(metas, opts)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				metas[i] = BuildBlockMeta(blocks[i], opts)
			}
		}()
	}
	for i := range blocks {
		next <- i
	}
	close(next)
	wg.Wait()
	return FromMetas(metas, opts)
}

// Append extends the array with meta-data for newly written blocks —
// incremental maintenance as a log grows (new HDFS blocks are immutable
// once closed, so existing metas never change).
func (a *Array) Append(blocks [][]records.Record) {
	for _, recs := range blocks {
		a.metas = append(a.metas, BuildBlockMeta(recs, a.opts))
	}
}

// Appended is the copy-on-write variant of Append: it returns a new array
// covering a's blocks followed by meta-data for the new blocks, leaving a
// untouched. BlockMeta values are immutable after construction, so the two
// arrays may safely share them across goroutines — this is the primitive
// the metadata service's snapshot store builds its epochs from.
func (a *Array) Appended(blocks [][]records.Record) *Array {
	metas := make([]*BlockMeta, 0, len(a.metas)+len(blocks))
	metas = append(metas, a.metas...)
	for _, recs := range blocks {
		metas = append(metas, BuildBlockMeta(recs, a.opts))
	}
	return FromMetas(metas, a.opts)
}

// Merge concatenates two arrays built with compatible options (block order:
// a's blocks then b's). It returns a new array; inputs are unchanged.
func Merge(a, b *Array) *Array {
	metas := make([]*BlockMeta, 0, len(a.metas)+len(b.metas))
	metas = append(metas, a.metas...)
	metas = append(metas, b.metas...)
	return FromMetas(metas, a.opts)
}

// Index is an inverted view of an Array: sub-dataset key → block estimates,
// for workloads that query many sub-datasets against the same array (the
// scheduler's per-job query path touches one key; interactive exploration
// touches thousands). Only hash-resident (dominant) entries can be
// inverted — Bloom filters are not enumerable — so Index answers
// DominantDistribution; callers needing Bloom-approximate tails fall back
// to Array.Distribution.
type Index struct {
	arr      *Array
	dominant map[string][]BlockEstimate
}

// NewIndex builds the inverted index in one pass over the hash maps.
func NewIndex(arr *Array) *Index {
	idx := &Index{arr: arr, dominant: make(map[string][]BlockEstimate)}
	for i, m := range arr.metas {
		for sub, sz := range m.hash {
			idx.dominant[sub] = append(idx.dominant[sub], BlockEstimate{Block: i, Size: sz, Class: Hashed})
		}
	}
	return idx
}

// DominantDistribution returns the exactly-recorded per-block sizes of sub
// (ascending block order — hash maps are scanned in block order).
func (ix *Index) DominantDistribution(sub string) []BlockEstimate {
	return ix.dominant[sub]
}

// DominantSubs returns the number of distinct dominant keys indexed.
func (ix *Index) DominantSubs() int { return len(ix.dominant) }

// EstimateDominant sums the exactly-recorded sizes of sub (a lower bound
// of the Eq.-6 estimate that skips Bloom probing entirely).
func (ix *Index) EstimateDominant(sub string) int64 {
	var t int64
	for _, be := range ix.dominant[sub] {
		t += be.Size
	}
	return t
}

// TopEntry is one row of Top.
type TopEntry struct {
	Sub   string
	Bytes int64 // dominant (hash-resident) bytes
}

// Top returns the n largest sub-datasets by dominant volume — answering
// "what's big in this file?" from meta-data alone, without touching raw
// blocks. Ties break lexicographically for determinism.
func (ix *Index) Top(n int) []TopEntry {
	entries := make([]TopEntry, 0, len(ix.dominant))
	for sub := range ix.dominant {
		entries = append(entries, TopEntry{Sub: sub, Bytes: ix.EstimateDominant(sub)})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Bytes != entries[j].Bytes {
			return entries[i].Bytes > entries[j].Bytes
		}
		return entries[i].Sub < entries[j].Sub
	})
	if n > len(entries) {
		n = len(entries)
	}
	if n < 0 {
		n = 0
	}
	return entries[:n]
}
