package elasticmap

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFibonacciBounds(t *testing.T) {
	got := FibonacciBounds(34 * KiB)
	want := []int64{0, 1 * KiB, 2 * KiB, 3 * KiB, 5 * KiB, 8 * KiB, 13 * KiB, 21 * KiB, 34 * KiB}
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bounds[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFibonacciBoundsCover64MB(t *testing.T) {
	bounds := FibonacciBounds(64 << 20)
	// Paper: "tens of buckets could be sufficient".
	if len(bounds) < 10 || len(bounds) > 40 {
		t.Errorf("bucket count = %d, want tens", len(bounds))
	}
	if bounds[len(bounds)-1] < 64<<20 {
		t.Errorf("last bound %d does not cover 64 MiB", bounds[len(bounds)-1])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d", i)
		}
	}
}

func TestScaledFibonacciBounds(t *testing.T) {
	// At 64 MiB the scaled unit is exactly the paper's 1 kb.
	a := ScaledFibonacciBounds(64 << 20)
	b := FibonacciBounds(64 << 20)
	if len(a) != len(b) {
		t.Fatalf("scaled(64MiB) diverges from paper bounds: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scaled(64MiB)[%d] = %d, want %d", i, a[i], b[i])
		}
	}
	// Smaller blocks keep the same relative resolution (same bucket count).
	s := ScaledFibonacciBounds(256 << 10)
	if len(s) != len(b) {
		t.Errorf("scaled(256KiB) has %d buckets, want %d", len(s), len(b))
	}
}

func TestUniformAndPow2Bounds(t *testing.T) {
	u := UniformBounds(1000, 4)
	if len(u) != 4 || u[0] != 0 || u[1] != 250 || u[3] != 750 {
		t.Errorf("UniformBounds = %v", u)
	}
	if got := UniformBounds(100, 0); len(got) != 1 {
		t.Errorf("degenerate uniform = %v", got)
	}
	p := PowerOfTwoBounds(8 * KiB)
	want := []int64{0, KiB, 2 * KiB, 4 * KiB}
	if len(p) != len(want) {
		t.Fatalf("PowerOfTwoBounds = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Errorf("pow2[%d] = %d, want %d", i, p[i], want[i])
		}
	}
}

func TestSeparatorObserve(t *testing.T) {
	s := NewSeparator([]int64{0, 10, 100, 1000})
	s.Observe("a", 5)    // bucket 0
	s.Observe("b", 50)   // bucket 1
	s.Observe("b", 60)   // moves to bucket 2 (110)
	s.Observe("c", 2000) // bucket 3
	if s.NumSubs() != 3 {
		t.Fatalf("NumSubs = %d", s.NumSubs())
	}
	counts := s.BucketCounts()
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 1 || counts[3] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if s.Sizes()["b"] != 110 {
		t.Errorf("size[b] = %d", s.Sizes()["b"])
	}
}

func TestSeparatorBoundsNormalized(t *testing.T) {
	// Unsorted bounds without 0 are sorted and prefixed with 0.
	s := NewSeparator([]int64{100, 10})
	b := s.Bounds()
	if b[0] != 0 || b[1] != 10 || b[2] != 100 {
		t.Errorf("normalized bounds = %v", b)
	}
	// Nil bounds default to Fibonacci.
	if d := NewSeparator(nil); d.Bounds()[1] != KiB {
		t.Errorf("default bounds = %v", d.Bounds()[:3])
	}
}

func TestThresholdForCount(t *testing.T) {
	s := NewSeparator([]int64{0, 10, 100})
	// 5 subs in bucket0 (<10), 3 in bucket1, 2 in bucket2.
	for i := 0; i < 5; i++ {
		s.Observe(fmt.Sprintf("t%d", i), 5)
	}
	for i := 0; i < 3; i++ {
		s.Observe(fmt.Sprintf("m%d", i), 50)
	}
	for i := 0; i < 2; i++ {
		s.Observe(fmt.Sprintf("h%d", i), 500)
	}
	cases := []struct {
		target int
		want   int64
		ok     bool
	}{
		{0, math.MaxInt64, true},  // nothing hashed
		{1, math.MaxInt64, false}, // top bucket alone (2) exceeds 1
		{2, 100, true},            // exactly the top bucket
		{4, 100, true},            // top bucket + partial middle doesn't fit wholly
		{5, 10, true},             // top + middle
		{9, 10, true},             // bucket 0 (5 subs) doesn't fit in the remaining 4
		{10, 0, true},             // everything
		{1000, 0, true},           // more than everything
	}
	for _, c := range cases {
		got, ok := s.ThresholdForCount(c.target)
		if got != c.want || ok != c.ok {
			t.Errorf("ThresholdForCount(%d) = (%d, %v), want (%d, %v)", c.target, got, ok, c.want, c.ok)
		}
	}
}

func TestThresholdForFraction(t *testing.T) {
	s := NewSeparator([]int64{0, 10})
	for i := 0; i < 8; i++ {
		s.Observe(fmt.Sprintf("lo%d", i), 1)
	}
	s.Observe("hi1", 20)
	s.Observe("hi2", 20)
	if th, ok := s.ThresholdForFraction(0.2); th != 10 || !ok {
		t.Errorf("fraction 0.2 → (%d, %v)", th, ok)
	}
	if th, _ := s.ThresholdForFraction(1.0); th != 0 {
		t.Errorf("fraction 1.0 → %d", th)
	}
	if th, _ := s.ThresholdForFraction(-1); th <= 10 {
		t.Errorf("fraction -1 should hash nothing, threshold %d", th)
	}
}

func TestSplit(t *testing.T) {
	s := NewSeparator([]int64{0, 10})
	s.Observe("small", 3)
	s.Observe("big", 30)
	dom, non := s.Split(10)
	if len(dom) != 1 || dom["big"] != 30 {
		t.Errorf("dominant = %v", dom)
	}
	if len(non) != 1 || non["small"] != 3 {
		t.Errorf("non-dominant = %v", non)
	}
}

// Property: the separator's threshold decision matches what a full sort
// would produce — at most `target` sub-datasets at or above the threshold,
// and relaxing to the next lower bucket bound would exceed the target
// (when the answer is exact).
func TestThresholdMatchesSortReferenceQuick(t *testing.T) {
	bounds := []int64{0, 10, 20, 30, 50, 80, 130}
	f := func(sizesRaw []uint16, targetRaw uint8) bool {
		s := NewSeparator(bounds)
		sizes := make([]int64, 0, len(sizesRaw))
		for i, raw := range sizesRaw {
			sz := int64(raw)%200 + 1
			s.Observe(fmt.Sprintf("s%d", i), sz)
			sizes = append(sizes, sz)
		}
		target := int(targetRaw) % (len(sizes) + 2)
		th, _ := s.ThresholdForCount(target)
		// Count subs >= threshold; must not exceed target (unless even the
		// top bucket overflows, which ThresholdForCount signals by ok).
		above := 0
		for _, sz := range sizes {
			if sz >= th {
				above++
			}
		}
		if _, ok := s.ThresholdForCount(target); ok && above > target {
			return false
		}
		// Reference: sorting descending, the top `above` sizes are all >= th.
		sorted := append([]int64(nil), sizes...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		for i := 0; i < above; i++ {
			if sorted[i] < th {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: bucket counts always sum to the number of distinct subs.
func TestBucketCountsSumQuick(t *testing.T) {
	f := func(obs []uint16) bool {
		s := NewSeparator([]int64{0, 16, 64, 256})
		for _, o := range obs {
			s.Observe(fmt.Sprintf("k%d", o%17), int64(o%100)+1)
		}
		sum := 0
		for _, c := range s.BucketCounts() {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == s.NumSubs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
