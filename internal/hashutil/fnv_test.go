package hashutil

import (
	"hash/fnv"
	"testing"
)

// The package's reason to exist is bit-compatibility with hash/fnv's
// New64a: loadgen summary digests and chaos corpus digests were computed
// with the stdlib before the dedupe and must not change.

func TestSum64MatchesStdlib(t *testing.T) {
	inputs := []string{
		"",
		"a",
		"hello, world",
		"node-17/block-42",
		string([]byte{0, 1, 2, 0xff, 0x80, 0x7f}),
	}
	for _, in := range inputs {
		std := fnv.New64a()
		std.Write([]byte(in))
		if got := Sum64([]byte(in)); got != std.Sum64() {
			t.Errorf("Sum64(%q) = %#x, stdlib %#x", in, got, std.Sum64())
		}
		if got := Sum64String(in); got != std.Sum64() {
			t.Errorf("Sum64String(%q) = %#x, stdlib %#x", in, got, std.Sum64())
		}
	}
}

func TestDigestStreamingEquivalence(t *testing.T) {
	// Chunked writes must equal the one-shot hash (the loadgen digest
	// streams fmt.Fprintf pieces).
	whole := "shard=3 key=movie-99 status=ok\n"
	d := New()
	d.WriteString(whole[:7])
	d.Write([]byte(whole[7:19]))
	d.WriteString(whole[19:])
	if d.Sum64() != Sum64String(whole) {
		t.Errorf("streamed %#x != one-shot %#x", d.Sum64(), Sum64String(whole))
	}
}

func TestDigestWriteNeverFails(t *testing.T) {
	d := New()
	n, err := d.Write(make([]byte, 1024))
	if n != 1024 || err != nil {
		t.Errorf("Write = (%d, %v), want (1024, nil)", n, err)
	}
}

func TestNewStartsAtOffsetBasis(t *testing.T) {
	if got := New().Sum64(); got != fnvOffset64 {
		t.Errorf("empty digest = %#x, want offset basis %#x", got, fnvOffset64)
	}
}
