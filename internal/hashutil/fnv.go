// Package hashutil holds the one FNV-1a implementation every layer
// shares. The shard router (internal/clusterd), the loadgen response
// digest and the chaos cluster replay digest all previously instantiated
// hash/fnv separately; they now meet here so the constants and the
// streaming semantics cannot drift apart. The digest is bit-compatible
// with hash/fnv's New64a over the same byte stream, which is what keeps
// pre-refactor loadgen summary lines and chaos corpus digests unchanged.
package hashutil

// FNV-64a parameters (FNV-1a, 64-bit variant).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Digest is an incremental FNV-64a hash. The zero value is NOT ready to
// use — construct with New so the offset basis is folded in.
type Digest struct {
	h uint64
}

// New returns a Digest seeded with the FNV-64a offset basis.
func New() *Digest {
	return &Digest{h: fnvOffset64}
}

// Write implements io.Writer (so fmt.Fprintf can stream into the hash);
// it never fails.
func (d *Digest) Write(p []byte) (int, error) {
	h := d.h
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	d.h = h
	return len(p), nil
}

// WriteString hashes s without allocating.
func (d *Digest) WriteString(s string) {
	h := d.h
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	d.h = h
}

// Sum64 returns the current hash value.
func (d *Digest) Sum64() uint64 { return d.h }

// Sum64String is the one-shot string hash: FNV-64a(s).
func Sum64String(s string) uint64 {
	d := Digest{h: fnvOffset64}
	d.WriteString(s)
	return d.h
}

// Sum64 is the one-shot byte-slice hash: FNV-64a(b).
func Sum64(b []byte) uint64 {
	d := Digest{h: fnvOffset64}
	d.Write(b)
	return d.h
}
