// Package clusterd scales the single-process metadata service
// (internal/server) into a sharded, replicated, self-healing cluster. The
// array catalog is partitioned across N shards by a deterministic hash;
// each shard's immutable epoch snapshots live on one primary and K
// followers chosen by rendezvous (highest-random-weight) hashing; a
// heartbeat failure detector (internal/detect.Tracker) drives failover —
// when a primary is suspected, the freshest follower is promoted behind a
// bumped fence and the shard map re-routes. An admin plane adds nodes and
// decommissions them with graceful shard handoff.
//
// The whole control plane is driven by explicit Tick calls, so one code
// path serves two regimes: the chaos harness advances a logical clock and
// proves convergence invariants under randomized crash/rejoin/
// decommission plans, and `datanet serve -cluster` feeds wall-clock time
// to the very same state machine.
//
// Consistency contract (mirrors DESIGN.md §10): replication is
// asynchronous snapshot shipping with epoch fencing. A primary acks an
// append as soon as its own snapshot is published, so a crash can orphan
// the newest epochs; after failover the promoted follower knows the
// highest epoch ever acked (the shard's high-water mark travels with the
// promotion) and serves anything older than it flagged as stale until new
// appends move past the mark. Shipments carry the fence they were cut
// under and are dropped on arrival if the shard has since re-fenced, so a
// deposed primary can never overwrite its successor.
package clusterd

import (
	"datanet/internal/cluster"
	"datanet/internal/placement"
)

// Shard placement moved to internal/placement with the unified-policy
// refactor; these wrappers keep clusterd's historical names and pin the
// cluster to the shared implementation (loadgen routes with the very same
// functions, so client and server shard maps cannot diverge).

// ShardOf maps an array name to its shard: FNV-64a modulo the shard
// count. Clients (loadgen) compute the same function from the topology
// view, so routing needs no per-array directory.
func ShardOf(name string, shards int) int { return placement.ShardOf(name, shards) }

// rendezvousScore is the highest-random-weight score of (shard, node):
// a splitmix64 finalizer over the pair. Deterministic across processes
// and Go versions, like the chaos RNG it mirrors.
func rendezvousScore(shard int, id cluster.NodeID) uint64 {
	return placement.RendezvousScore(shard, id)
}

// rendezvousRank orders candidate nodes for a shard by descending score.
// The prefix of the ranking is the shard's desired replica set: adding or
// removing one node perturbs only the shards whose ranking the change
// actually enters — the consistent-hashing property that keeps topology
// changes from reshuffling the whole catalog.
func rendezvousRank(shard int, ids []cluster.NodeID) []cluster.NodeID {
	return placement.RendezvousRank(shard, ids)
}
