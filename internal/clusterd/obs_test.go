package clusterd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"datanet/internal/cluster"
	"datanet/internal/obs"
)

// promSamples parses exposition text into sample → value, skipping
// comments and any family whose name starts with a skipped prefix.
func promSamples(t *testing.T, text []byte, skipPrefixes ...string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(text), "\n"), "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		key, val := line[:i], line[i+1:]
		skip := false
		for _, p := range skipPrefixes {
			if strings.HasPrefix(key, p) {
				skip = true
			}
		}
		if skip {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[key] = v
	}
	return out
}

// The /admin/metrics rollup must equal what a scraper computes by
// summing every node's /metrics: same sample set, counters summing
// exactly, histogram sums to float tolerance. Runtime gauges stay
// per-node; datanet_cluster_ families exist only in the rollup.
func TestAdminMetricsRollupEqualsNodeSum(t *testing.T) {
	cfg := testConfig(4, 2)
	c, srvs := httpCluster(t, cfg, 3)
	names := testNames(6)
	seed(t, c, names)

	get := func(id cluster.NodeID, path string) []byte {
		resp, err := http.Get(srvs[id].URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Bytes()
	}

	// Traffic: every node sees every array — leaders answer, non-leaders
	// refuse; both paths move counters somewhere.
	for _, id := range c.MemberIDs() {
		for _, name := range names {
			get(id, "/v1/arrays/"+name+"/estimate?sub="+name)
			get(id, "/v1/arrays/"+name+"/top?n=2")
		}
		get(id, "/healthz")
	}

	want := map[string]float64{}
	for _, id := range c.MemberIDs() {
		text := get(id, "/metrics")
		if err := obs.ValidatePromText(text); err != nil {
			t.Fatalf("node %d /metrics invalid: %v", id, err)
		}
		for k, v := range promSamples(t, text, "datanet_go_") {
			want[k] += v
		}
	}

	rollup := get(0, "/admin/metrics")
	if err := obs.ValidatePromText(rollup); err != nil {
		t.Fatalf("/admin/metrics invalid: %v", err)
	}
	if !strings.Contains(string(rollup), "datanet_cluster_topology_gen") ||
		!strings.Contains(string(rollup), `datanet_cluster_shard_primary{shard="0"}`) {
		t.Errorf("rollup missing cluster families:\n%s", rollup)
	}
	got := promSamples(t, rollup, "datanet_cluster_")

	if len(got) != len(want) {
		t.Errorf("rollup has %d samples, node sum has %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("rollup missing sample %s", k)
			continue
		}
		if strings.Contains(k, "_sum") {
			if math.Abs(g-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Errorf("%s: rollup %v, node sum %v", k, g, w)
			}
		} else if g != w {
			t.Errorf("%s: rollup %v, node sum %v", k, g, w)
		}
	}
}

// Requests through a cluster node must leave spans in its ring with the
// cluster annotations (node, shard, request ID propagation, staleness
// default off) visible via /admin/trace.
func TestHandlerTraceSpans(t *testing.T) {
	cfg := testConfig(2, 1)
	c, srvs := httpCluster(t, cfg, 3)
	names := testNames(2)
	seed(t, c, names)
	name := names[0]
	si := ShardOf(name, cfg.Shards)
	primary := cluster.NodeID(c.Topology().Map[si].Primary)

	req, _ := http.NewRequest("GET", srvs[primary].URL+"/v1/arrays/"+name+"/estimate?sub="+name, nil)
	req.Header.Set(obs.RequestIDHeader, "trace-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "trace-test-1" {
		t.Errorf("request id not echoed: %q", got)
	}

	resp, err = http.Get(srvs[primary].URL + "/admin/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var found *obs.Span
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var sp obs.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		if sp.RequestID == "trace-test-1" {
			found = &sp
		}
	}
	if found == nil {
		t.Fatal("traced request not in span ring")
	}
	if found.Node != int(primary) || found.Shard != si || found.Status != 200 ||
		found.Route != "estimate" || found.Stale {
		t.Errorf("span annotations wrong: %+v", found)
	}
}
