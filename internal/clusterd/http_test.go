package clusterd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"datanet/internal/cluster"
	"datanet/internal/elasticmap"
	"datanet/internal/server"
)

// httpCluster boots a cluster with one httptest server per node and
// returns the cluster plus per-node test servers.
func httpCluster(t *testing.T, cfg Config, n int) (*Cluster, map[cluster.NodeID]*httptest.Server) {
	t.Helper()
	c, err := New(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	srvs := map[cluster.NodeID]*httptest.Server{}
	for _, id := range c.MemberIDs() {
		h, err := NewHandler(c, id)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		srvs[id] = ts
		c.SetAddr(id, ts.Listener.Addr().String())
	}
	return c, srvs
}

func TestHandlerRoutesAndGates(t *testing.T) {
	cfg := testConfig(2, 1)
	c, srvs := httpCluster(t, cfg, 3)
	names := testNames(4)
	seed(t, c, names)
	name := names[0]
	si := ShardOf(name, cfg.Shards)
	primary := cluster.NodeID(c.Topology().Map[si].Primary)

	get := func(id cluster.NodeID, path string) (*http.Response, []byte) {
		resp, err := http.Get(srvs[id].URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Leader serves the read; the estimate answer has the usual shape.
	resp, body := get(primary, "/v1/arrays/"+name+"/estimate?sub="+name)
	if resp.StatusCode != 200 {
		t.Fatalf("estimate at leader: %d %s", resp.StatusCode, body)
	}
	// Non-leaders refuse with the typed 503 and a Retry-After hint.
	for _, id := range c.MemberIDs() {
		if id == primary {
			continue
		}
		resp, body := get(id, "/v1/arrays/"+name+"/estimate?sub="+name)
		if resp.StatusCode != 503 {
			t.Fatalf("estimate at non-leader %d: %d %s", id, resp.StatusCode, body)
		}
		var eb server.ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != "not_leader" {
			t.Fatalf("non-leader body %s (err %v)", body, err)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("non-leader 503 missing Retry-After")
		}
	}

	// The catalog listing is filtered to led shards.
	for _, id := range c.MemberIDs() {
		resp, body := get(id, "/v1/arrays")
		if resp.StatusCode != 200 {
			t.Fatalf("arrays at %d: %d", id, resp.StatusCode)
		}
		var listing struct {
			Arrays []server.ArrayInfo `json:"arrays"`
		}
		if err := json.Unmarshal(body, &listing); err != nil {
			t.Fatal(err)
		}
		nd, _ := c.Node(id)
		led := map[int]bool{}
		for _, s := range nd.LedShards() {
			led[s] = true
		}
		for _, ai := range listing.Arrays {
			if !led[ShardOf(ai.Name, cfg.Shards)] {
				t.Fatalf("node %d lists %q from a shard it does not lead", id, ai.Name)
			}
		}
	}

	// Appends via HTTP replicate exactly like direct ones.
	payload, err := elasticmap.Encode(tinyArray(name, 5))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(srvs[primary].URL+"/v1/arrays/"+name+"/append", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var ar struct {
		Epoch uint64 `json:"epoch"`
	}
	json.NewDecoder(resp2.Body).Decode(&ar)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || ar.Epoch != 2 {
		t.Fatalf("append via HTTP: %d epoch %d", resp2.StatusCode, ar.Epoch)
	}
	tickUntilConverged(t, c, 0, 5)

	// Topology and stats admin endpoints answer on any node.
	resp3, body3 := get(c.MemberIDs()[1], "/admin/topology")
	if resp3.StatusCode != 200 {
		t.Fatalf("admin/topology: %d", resp3.StatusCode)
	}
	var tv TopologyView
	if err := json.Unmarshal(body3, &tv); err != nil || tv.Shards != cfg.Shards {
		t.Fatalf("topology body %s (err %v)", body3, err)
	}
	if tv.Nodes[0].Addr == "" {
		t.Fatal("topology missing node addresses")
	}
}

func TestHandlerStaleHeaderAfterFailover(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.ShipDelay = 6 // orphan the acked epoch, as in the direct test
	c, srvs := httpCluster(t, cfg, 4)
	name := "orphan-me"
	if err := c.Load(name, tinyArray(name, 10)); err != nil {
		t.Fatal(err)
	}
	primary := cluster.NodeID(c.Topology().Map[0].Primary)
	if _, err := c.Append(name, tinyArray(name, 5)); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(primary); err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 10 && cluster.NodeID(c.Topology().Map[0].Primary) == primary; i++ {
		now++
		c.Tick(now)
	}
	winner := cluster.NodeID(c.Topology().Map[0].Primary)
	if winner == primary || winner < 0 {
		t.Fatalf("no failover: %+v", c.Topology().Map[0])
	}
	resp, err := http.Get(srvs[winner].URL + "/v1/arrays/" + name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get(StaleHeader) != "true" {
		t.Fatalf("post-failover read: %d stale header %q, want 200 + true",
			resp.StatusCode, resp.Header.Get(StaleHeader))
	}
	// A fresh append clears the flag.
	if _, err := c.Append(name, tinyArray(name, 1)); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(srvs[winner].URL + "/v1/arrays/" + name)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get(StaleHeader) != "" {
		t.Fatal("stale header survived a fresh append")
	}
}

func TestHandlerAdminDecommission(t *testing.T) {
	cfg := testConfig(2, 1)
	c, srvs := httpCluster(t, cfg, 3)
	seed(t, c, testNames(4))
	victim := c.MemberIDs()[0]
	other := c.MemberIDs()[1]
	resp, err := http.Post(srvs[other].URL+"/admin/decommission?node="+strconv.Itoa(int(victim)), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("admin/decommission: %d", resp.StatusCode)
	}
	tickUntilConverged(t, c, 0, 30)
	for _, id := range c.MemberIDs() {
		if id == victim {
			t.Fatal("decommissioned node still a member")
		}
	}
}
