package clusterd

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"datanet/internal/cluster"
	"datanet/internal/elasticmap"
	"datanet/internal/obs"
	"datanet/internal/server"
)

// StaleHeader marks a read served below the shard's acked high-water
// mark: real data, but older than something a client has already seen.
const StaleHeader = "X-Datanet-Stale"

// Handler is one cluster node's HTTP face: the single-process query API
// (internal/server) wrapped in a leadership gate, with writes rerouted
// through the cluster's replication bookkeeping and an admin plane for
// topology inspection, node addition and decommissioning.
type Handler struct {
	c      *Cluster
	id     cluster.NodeID
	node   *Node
	srv    *server.Server
	tracer *obs.Tracer
	chain  http.Handler
	// OnAddNode, when set, is called (outside the cluster lock) after
	// /admin/addnode registers a member, so the serving layer can boot a
	// listener for it and record its address.
	OnAddNode func(id cluster.NodeID)
}

// NewHandler wires node id's handler. The embedded server serves straight
// from the node's snapshot store; /readyz reports ready only once the
// node is registered with the control plane and not down. Every request
// passes the observability middleware (request IDs, span ring, optional
// slog), and the node's metrics feed the cluster rollup.
func NewHandler(c *Cluster, id cluster.NodeID) (*Handler, error) {
	node, ok := c.Node(id)
	if !ok {
		return nil, errors.New("clusterd: handler for unknown node")
	}
	srv := server.New(node.Store())
	srv.SetReady(node.Ready)
	h := &Handler{c: c, id: id, node: node, srv: srv,
		tracer: obs.NewTracer(obs.DefaultRingSize, obs.DefaultSlowK)}
	h.chain = obs.Middleware(h.tracer, int(id), c.Logger(), http.HandlerFunc(h.serve))
	c.RegisterMetricsSource(id, srv.DumpMetrics)
	return h, nil
}

// Server exposes the embedded single-process server (metrics, drain).
func (h *Handler) Server() *server.Server { return h.srv }

// Tracer exposes the node's span ring (CLI trace dumps, tests).
func (h *Handler) Tracer() *obs.Tracer { return h.tracer }

// ServeHTTP runs every request through the observability middleware and
// into the cluster-aware router.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.chain.ServeHTTP(w, r)
}

// serve routes the cluster-aware endpoints and delegates everything
// else (healthz, readyz, metrics, per-array queries) to the embedded
// server after the leadership gate has passed.
func (h *Handler) serve(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/admin/topology":
		h.writeJSON(w, h.c.Topology())
		return
	case "/admin/stats":
		h.writeJSON(w, h.c.Stats())
		return
	case "/admin/trace":
		obs.TraceHandler(h.tracer).ServeHTTP(w, r)
		return
	case "/admin/metrics":
		h.handleRollup(w)
		return
	case "/admin/addnode":
		h.handleAddNode(w, r)
		return
	case "/admin/decommission":
		h.handleDecommission(w, r)
		return
	case "/v1/arrays":
		if r.Method == http.MethodGet {
			h.handleList(w)
			return
		}
	}
	if name, rest, ok := splitArrayPath(r.URL.Path); ok {
		if sp := obs.SpanFrom(r.Context()); sp != nil {
			sp.Shard = ShardOf(name, h.c.Shards())
		}
		switch {
		case r.Method == http.MethodPost && rest == "/append":
			h.handleWrite(w, r, name, true)
			return
		case r.Method == http.MethodPut && rest == "":
			h.handleWrite(w, r, name, false)
			return
		default:
			// Reads: gate on leadership and flag staleness, then let the
			// embedded server answer from the same store.
			sn, stale, err := h.c.ReadAt(h.id, name)
			if err != nil {
				server.WriteError(w, h.clusterError(err))
				return
			}
			if stale {
				w.Header().Set(StaleHeader, "true")
				if sp := obs.SpanFrom(r.Context()); sp != nil {
					sp.Stale = true
				}
			}
			_ = sn
		}
	}
	h.srv.ServeHTTP(w, r)
}

// handleRollup is GET /admin/metrics: the cluster-wide Prometheus view.
// Per-node dumps merge losslessly (counters sum, histograms merge
// observation-exactly, ascending node order), so this exposition equals
// what a scraper would compute by summing every node's /metrics — the
// rollup-equality test pins that. Per-process Go runtime gauges are left
// out (not mergeable); cluster control-plane counters and per-shard
// gauges follow under the datanet_cluster_ prefix.
func (h *Handler) handleRollup(w http.ResponseWriter) {
	merged := server.MergeDumps(h.c.MetricsDumps()...)
	out := server.RenderProm(merged, false)

	st := h.c.Stats()
	tv := h.c.Topology()
	p := obs.NewProm()
	p.Family("datanet_cluster_promotions_total", "counter", "Shard primary promotions (failover elections).")
	p.AddInt("datanet_cluster_promotions_total", nil, uint64(st.Promotions))
	p.Family("datanet_cluster_handoffs_total", "counter", "Graceful primary handoffs during decommission.")
	p.AddInt("datanet_cluster_handoffs_total", nil, uint64(st.Handoffs))
	p.Family("datanet_cluster_ships_delivered_total", "counter", "Replica shipments applied by followers.")
	p.AddInt("datanet_cluster_ships_delivered_total", nil, uint64(st.ShipsDelivered))
	p.Family("datanet_cluster_ships_dropped_total", "counter", "Replica shipments dropped by fencing or membership churn.")
	p.AddInt("datanet_cluster_ships_dropped_total", nil, uint64(st.DroppedShips))
	p.Family("datanet_cluster_suspicions_total", "counter", "Matured failure-detector suspicions.")
	p.AddInt("datanet_cluster_suspicions_total", nil, uint64(st.Suspicions))
	p.Family("datanet_cluster_topology_gen", "gauge", "Topology generation; bumps on every role or membership change.")
	p.AddInt("datanet_cluster_topology_gen", nil, tv.Gen)
	p.Family("datanet_cluster_nodes", "gauge", "Current member count.")
	p.AddInt("datanet_cluster_nodes", nil, uint64(len(tv.Nodes)))
	p.Family("datanet_cluster_shard_primary", "gauge", "Primary node of each shard, -1 while leaderless.")
	for _, sv := range tv.Map {
		p.Add("datanet_cluster_shard_primary", []obs.Label{{K: "shard", V: strconv.Itoa(sv.Shard)}}, float64(sv.Primary))
	}
	p.Family("datanet_cluster_shard_fence", "counter", "Fencing token of each shard; bumps on leadership change.")
	for _, sv := range tv.Map {
		p.AddInt("datanet_cluster_shard_fence", []obs.Label{{K: "shard", V: strconv.Itoa(sv.Shard)}}, sv.Fence)
	}

	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(append(out, p.Bytes()...))
}

// handleWrite is the cluster append/put path: decode, route through the
// cluster (leadership check, fencing, replication bookkeeping), respond
// in the single-process shape so clients cannot tell the modes apart.
func (h *Handler) handleWrite(w http.ResponseWriter, r *http.Request, name string, isAppend bool) {
	if err := h.srv.BeginWrite(); err != nil {
		server.WriteError(w, err)
		return
	}
	defer h.srv.EndWrite()
	blob, err := io.ReadAll(io.LimitReader(r.Body, server.MaxBodyBytes+1))
	if err != nil || len(blob) > server.MaxBodyBytes {
		server.WriteError(w, errors.New("bad request body"))
		return
	}
	arr, err := elasticmap.Decode(blob)
	if err != nil {
		server.WriteError(w, errors.New("decoding array: "+err.Error()))
		return
	}
	var sn *server.Snapshot
	if isAppend {
		sn, err = h.c.AppendAt(h.id, name, arr)
	} else {
		sn, err = h.c.PutAt(h.id, name, arr)
	}
	if err != nil {
		server.WriteError(w, h.clusterError(err))
		return
	}
	h.writeJSON(w, map[string]any{"name": name, "epoch": sn.Epoch, "blocks": sn.Arr.Len()})
}

// handleList filters the node's catalog to the shards it leads: follower
// replicas exist on this store but are not served.
func (h *Handler) handleList(w http.ResponseWriter) {
	led := map[int]bool{}
	for _, si := range h.node.LedShards() {
		led[si] = true
	}
	store := h.node.Store()
	infos := []server.ArrayInfo{}
	for _, name := range store.Names() {
		if !led[ShardOf(name, h.c.Shards())] {
			continue
		}
		if sn, ok := store.Get(name); ok {
			infos = append(infos, server.InfoOf(sn))
		}
	}
	h.writeJSON(w, map[string]any{"arrays": infos})
}

func (h *Handler) handleAddNode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		server.WriteError(w, errors.New("addnode wants POST"))
		return
	}
	id := h.c.AddNode()
	if h.OnAddNode != nil {
		h.OnAddNode(id)
	}
	var addr string
	for _, nv := range h.c.Topology().Nodes {
		if nv.ID == int(id) {
			addr = nv.Addr
		}
	}
	h.writeJSON(w, map[string]any{"id": int(id), "addr": addr})
}

func (h *Handler) handleDecommission(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		server.WriteError(w, errors.New("decommission wants POST"))
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		server.WriteError(w, errors.New("bad or missing node parameter"))
		return
	}
	if err := h.c.Decommission(cluster.NodeID(id)); err != nil {
		server.WriteError(w, err)
		return
	}
	h.writeJSON(w, map[string]any{"ok": true, "node": id})
}

// clusterError maps routing errors to the typed 503/404 shapes clients
// retry on (or don't).
func (h *Handler) clusterError(err error) error {
	hint := h.c.RetryHint()
	switch {
	case errors.Is(err, ErrNotLeader):
		return server.Unavailable("not_leader", hint, "%v", err)
	case errors.Is(err, ErrNoLeader):
		return server.Unavailable("no_leader", hint, "%v", err)
	case errors.Is(err, ErrNodeDown):
		return server.Unavailable("node_down", hint, "%v", err)
	case errors.Is(err, ErrUnknownArray):
		return server.NotFound("%v", err)
	}
	return err
}

func (h *Handler) writeJSON(w http.ResponseWriter, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		blob = []byte(`{"error":"encoding failure"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(blob, '\n'))
}

// splitArrayPath cuts "/v1/arrays/{name}[/op]" into name and the op
// suffix ("" for the bare array path).
func splitArrayPath(path string) (name, rest string, ok bool) {
	tail, ok := strings.CutPrefix(path, "/v1/arrays/")
	if !ok || tail == "" {
		return "", "", false
	}
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		return tail[:i], tail[i:], tail[:i] != ""
	}
	return tail, "", true
}
