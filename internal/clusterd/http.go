package clusterd

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"datanet/internal/cluster"
	"datanet/internal/elasticmap"
	"datanet/internal/server"
)

// StaleHeader marks a read served below the shard's acked high-water
// mark: real data, but older than something a client has already seen.
const StaleHeader = "X-Datanet-Stale"

// Handler is one cluster node's HTTP face: the single-process query API
// (internal/server) wrapped in a leadership gate, with writes rerouted
// through the cluster's replication bookkeeping and an admin plane for
// topology inspection, node addition and decommissioning.
type Handler struct {
	c    *Cluster
	id   cluster.NodeID
	node *Node
	srv  *server.Server
	// OnAddNode, when set, is called (outside the cluster lock) after
	// /admin/addnode registers a member, so the serving layer can boot a
	// listener for it and record its address.
	OnAddNode func(id cluster.NodeID)
}

// NewHandler wires node id's handler. The embedded server serves straight
// from the node's snapshot store; /readyz reports ready only once the
// node is registered with the control plane and not down.
func NewHandler(c *Cluster, id cluster.NodeID) (*Handler, error) {
	node, ok := c.Node(id)
	if !ok {
		return nil, errors.New("clusterd: handler for unknown node")
	}
	srv := server.New(node.Store())
	srv.SetReady(node.Ready)
	return &Handler{c: c, id: id, node: node, srv: srv}, nil
}

// Server exposes the embedded single-process server (metrics, drain).
func (h *Handler) Server() *server.Server { return h.srv }

// ServeHTTP routes the cluster-aware endpoints and delegates everything
// else (healthz, readyz, metrics, per-array queries) to the embedded
// server after the leadership gate has passed.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/admin/topology":
		h.writeJSON(w, h.c.Topology())
		return
	case "/admin/stats":
		h.writeJSON(w, h.c.Stats())
		return
	case "/admin/addnode":
		h.handleAddNode(w, r)
		return
	case "/admin/decommission":
		h.handleDecommission(w, r)
		return
	case "/v1/arrays":
		if r.Method == http.MethodGet {
			h.handleList(w)
			return
		}
	}
	if name, rest, ok := splitArrayPath(r.URL.Path); ok {
		switch {
		case r.Method == http.MethodPost && rest == "/append":
			h.handleWrite(w, r, name, true)
			return
		case r.Method == http.MethodPut && rest == "":
			h.handleWrite(w, r, name, false)
			return
		default:
			// Reads: gate on leadership and flag staleness, then let the
			// embedded server answer from the same store.
			sn, stale, err := h.c.ReadAt(h.id, name)
			if err != nil {
				server.WriteError(w, h.clusterError(err))
				return
			}
			if stale {
				w.Header().Set(StaleHeader, "true")
			}
			_ = sn
		}
	}
	h.srv.ServeHTTP(w, r)
}

// handleWrite is the cluster append/put path: decode, route through the
// cluster (leadership check, fencing, replication bookkeeping), respond
// in the single-process shape so clients cannot tell the modes apart.
func (h *Handler) handleWrite(w http.ResponseWriter, r *http.Request, name string, isAppend bool) {
	if err := h.srv.BeginWrite(); err != nil {
		server.WriteError(w, err)
		return
	}
	defer h.srv.EndWrite()
	blob, err := io.ReadAll(io.LimitReader(r.Body, server.MaxBodyBytes+1))
	if err != nil || len(blob) > server.MaxBodyBytes {
		server.WriteError(w, errors.New("bad request body"))
		return
	}
	arr, err := elasticmap.Decode(blob)
	if err != nil {
		server.WriteError(w, errors.New("decoding array: "+err.Error()))
		return
	}
	var sn *server.Snapshot
	if isAppend {
		sn, err = h.c.AppendAt(h.id, name, arr)
	} else {
		sn, err = h.c.PutAt(h.id, name, arr)
	}
	if err != nil {
		server.WriteError(w, h.clusterError(err))
		return
	}
	h.writeJSON(w, map[string]any{"name": name, "epoch": sn.Epoch, "blocks": sn.Arr.Len()})
}

// handleList filters the node's catalog to the shards it leads: follower
// replicas exist on this store but are not served.
func (h *Handler) handleList(w http.ResponseWriter) {
	led := map[int]bool{}
	for _, si := range h.node.LedShards() {
		led[si] = true
	}
	store := h.node.Store()
	infos := []server.ArrayInfo{}
	for _, name := range store.Names() {
		if !led[ShardOf(name, h.c.Shards())] {
			continue
		}
		if sn, ok := store.Get(name); ok {
			infos = append(infos, server.InfoOf(sn))
		}
	}
	h.writeJSON(w, map[string]any{"arrays": infos})
}

func (h *Handler) handleAddNode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		server.WriteError(w, errors.New("addnode wants POST"))
		return
	}
	id := h.c.AddNode()
	if h.OnAddNode != nil {
		h.OnAddNode(id)
	}
	var addr string
	for _, nv := range h.c.Topology().Nodes {
		if nv.ID == int(id) {
			addr = nv.Addr
		}
	}
	h.writeJSON(w, map[string]any{"id": int(id), "addr": addr})
}

func (h *Handler) handleDecommission(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		server.WriteError(w, errors.New("decommission wants POST"))
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		server.WriteError(w, errors.New("bad or missing node parameter"))
		return
	}
	if err := h.c.Decommission(cluster.NodeID(id)); err != nil {
		server.WriteError(w, err)
		return
	}
	h.writeJSON(w, map[string]any{"ok": true, "node": id})
}

// clusterError maps routing errors to the typed 503/404 shapes clients
// retry on (or don't).
func (h *Handler) clusterError(err error) error {
	hint := h.c.RetryHint()
	switch {
	case errors.Is(err, ErrNotLeader):
		return server.Unavailable("not_leader", hint, "%v", err)
	case errors.Is(err, ErrNoLeader):
		return server.Unavailable("no_leader", hint, "%v", err)
	case errors.Is(err, ErrNodeDown):
		return server.Unavailable("node_down", hint, "%v", err)
	case errors.Is(err, ErrUnknownArray):
		return server.NotFound("%v", err)
	}
	return err
}

func (h *Handler) writeJSON(w http.ResponseWriter, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		blob = []byte(`{"error":"encoding failure"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(blob, '\n'))
}

// splitArrayPath cuts "/v1/arrays/{name}[/op]" into name and the op
// suffix ("" for the bare array path).
func splitArrayPath(path string) (name, rest string, ok bool) {
	tail, ok := strings.CutPrefix(path, "/v1/arrays/")
	if !ok || tail == "" {
		return "", "", false
	}
	if i := strings.IndexByte(tail, '/'); i >= 0 {
		return tail[:i], tail[i:], tail[:i] != ""
	}
	return tail, "", true
}
