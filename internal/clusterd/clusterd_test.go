package clusterd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datanet/internal/cluster"
	"datanet/internal/detect"
	"datanet/internal/elasticmap"
	"datanet/internal/records"
)

// testConfig is the canonical small-cluster shape: heartbeats every
// logical second, suspicion after three missed, shipments land one tick
// after publish.
func testConfig(shards, replicas int) Config {
	return Config{
		Shards:   shards,
		Replicas: replicas,
		Detect:   detect.Config{Mode: detect.Heartbeat, Interval: 1, Timeout: 3},
	}
}

func tinyArray(sub string, n int) *elasticmap.Array {
	recs := make([]records.Record, n)
	for i := range recs {
		recs[i] = records.Record{Sub: sub, Time: int64(i), Rating: 3, Payload: "pp"}
	}
	return elasticmap.Build([][]records.Record{recs}, elasticmap.Options{Alpha: 0.5})
}

// seed loads names into the cluster, one tiny array each.
func seed(t *testing.T, c *Cluster, names []string) {
	t.Helper()
	for _, name := range names {
		if err := c.Load(name, tinyArray(name, 10)); err != nil {
			t.Fatalf("load %q: %v", name, err)
		}
	}
}

// tickUntilConverged advances the logical clock until Converged or the
// tick budget runs out.
func tickUntilConverged(t *testing.T, c *Cluster, from float64, budget int) float64 {
	t.Helper()
	now := from
	for i := 0; i < budget; i++ {
		now++
		c.Tick(now)
		if c.Converged() == nil {
			return now
		}
	}
	t.Fatalf("not converged after %d ticks: %v", budget, c.Converged())
	return now
}

func testNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("arr-%02d", i)
	}
	return out
}

func TestBootstrapAssignsDisjointReplicaSets(t *testing.T) {
	c, err := New(testConfig(4, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	tv := c.Topology()
	for _, sv := range tv.Map {
		if sv.Primary < 0 {
			t.Fatalf("shard %d bootstrapped leaderless", sv.Shard)
		}
		if len(sv.Followers) != 2 {
			t.Fatalf("shard %d has %d followers, want 2", sv.Shard, len(sv.Followers))
		}
		for _, f := range sv.Followers {
			if f == sv.Primary {
				t.Fatalf("shard %d: node %d is both primary and follower", sv.Shard, f)
			}
		}
	}
	seed(t, c, testNames(8))
	if err := c.Converged(); err != nil {
		t.Fatalf("freshly seeded cluster not converged: %v", err)
	}
	census := c.PrimaryCensus()
	for si, owners := range census {
		if len(owners) != 1 {
			t.Fatalf("shard %d claimed by %v", si, owners)
		}
	}
}

func TestAppendShipsToFollowersAsync(t *testing.T) {
	c, err := New(testConfig(2, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	names := testNames(4)
	seed(t, c, names)
	sn, err := c.Append(names[0], tinyArray(names[0], 5))
	if err != nil {
		t.Fatal(err)
	}
	if sn.Epoch != 2 {
		t.Fatalf("append epoch %d, want 2", sn.Epoch)
	}
	// Shipping is asynchronous: immediately after the ack the cluster is
	// not converged (followers behind), one tick later it is.
	if c.Converged() == nil {
		t.Fatal("converged immediately after append; shipping should be async")
	}
	tickUntilConverged(t, c, 0, 5)
	got, stale, err := c.Read(names[0])
	if err != nil || stale || got.Epoch != 2 {
		t.Fatalf("read after convergence: epoch %d stale %v err %v", got.Epoch, stale, err)
	}
}

func TestNotLeaderRouting(t *testing.T) {
	c, err := New(testConfig(2, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	names := testNames(2)
	seed(t, c, names)
	primary := cluster.NodeID(c.Topology().Map[ShardOf(names[0], 2)].Primary)
	for _, id := range c.MemberIDs() {
		if id == primary {
			continue
		}
		if _, err := c.AppendAt(id, names[0], tinyArray(names[0], 1)); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("append at non-leader %d: %v, want ErrNotLeader", id, err)
		}
		if _, _, err := c.ReadAt(id, names[0]); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("read at non-leader %d: %v, want ErrNotLeader", id, err)
		}
	}
}

// The heart of the failover contract: crash a primary with an acked but
// unshipped epoch. The promoted follower must keep serving the array —
// flagged stale while below the acked high-water mark — and the first
// post-failover append must jump past every orphaned epoch.
func TestFailoverFlagsStaleReadsAndJumpsEpochs(t *testing.T) {
	cfg := testConfig(1, 2)
	// The shipping backlog outlives the detection timeout (3), so the
	// failover fences the still-in-flight epoch — the orphaning scenario.
	cfg.ShipDelay = 6
	c, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	name := "orphan-me"
	if err := c.Load(name, tinyArray(name, 10)); err != nil {
		t.Fatal(err)
	}
	primary := cluster.NodeID(c.Topology().Map[0].Primary)
	// Acked epoch 2 exists only on the primary; the shipment is in flight.
	if _, err := c.Append(name, tinyArray(name, 5)); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(primary); err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 10; i++ {
		now++
		c.Tick(now)
		if cluster.NodeID(c.Topology().Map[0].Primary) != primary {
			break
		}
	}
	tv := c.Topology()
	if cluster.NodeID(tv.Map[0].Primary) == primary || tv.Map[0].Primary < 0 {
		t.Fatalf("no failover happened: %+v", tv.Map[0])
	}
	if tv.Map[0].Fence < 2 {
		t.Fatalf("fence not bumped: %d", tv.Map[0].Fence)
	}
	// The winner never saw epoch 2: it serves epoch 1, flagged stale.
	sn, stale, err := c.Read(name)
	if err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if sn.Epoch != 1 || !stale {
		t.Fatalf("post-failover read: epoch %d stale %v, want epoch 1 stale", sn.Epoch, stale)
	}
	// New appends jump past the orphaned lineage and clear the staleness.
	sn2, err := c.Append(name, tinyArray(name, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sn2.Epoch != 3 {
		t.Fatalf("post-failover append epoch %d, want 3 (past acked 2)", sn2.Epoch)
	}
	if _, stale, _ := c.Read(name); stale {
		t.Fatal("read still stale after a fresh append")
	}
	stats := c.Stats()
	if stats.Promotions == 0 || stats.Suspicions == 0 {
		t.Fatalf("stats did not record the failover: %+v", stats)
	}
	// The orphaned in-flight shipment must have been fenced out, not
	// applied over the new lineage.
	tickUntilConverged(t, c, now, 20)
	if c.Stats().DroppedShips == 0 {
		t.Fatal("the deposed primary's shipment was not dropped")
	}
}

func TestCrashRejoinWipesAndResyncs(t *testing.T) {
	c, err := New(testConfig(2, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	names := testNames(6)
	seed(t, c, names)
	victim := cluster.NodeID(c.Topology().Map[0].Primary)
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	now := tickUntilConverged(t, c, 0, 20)
	// A quick restart must come back empty and role-free: the control
	// plane re-enlists it and re-ships what it should hold.
	if err := c.Rejoin(victim); err != nil {
		t.Fatal(err)
	}
	nd, _ := c.Node(victim)
	if got := len(nd.Store().Names()); got != 0 {
		t.Fatalf("rejoined node still holds %d arrays; restart must wipe", got)
	}
	now = tickUntilConverged(t, c, now, 30)
	for _, name := range names {
		if _, stale, err := c.Read(name); err != nil || stale {
			t.Fatalf("read %q after rejoin cycle: stale %v err %v", name, stale, err)
		}
	}
	_ = now
}

func TestDecommissionHandsOffGracefully(t *testing.T) {
	c, err := New(testConfig(4, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	names := testNames(8)
	seed(t, c, names)
	// Pick a node that leads at least one shard.
	var victim cluster.NodeID = -1
	for _, sv := range c.Topology().Map {
		if sv.Primary >= 0 {
			victim = cluster.NodeID(sv.Primary)
			break
		}
	}
	if err := c.Decommission(victim); err != nil {
		t.Fatal(err)
	}
	tickUntilConverged(t, c, 0, 30)
	for _, id := range c.MemberIDs() {
		if id == victim {
			t.Fatal("decommissioned node still a member after convergence")
		}
	}
	for _, name := range names {
		if _, stale, err := c.Read(name); err != nil || stale {
			t.Fatalf("read %q after decommission: stale %v err %v", name, stale, err)
		}
	}
	if c.Stats().Handoffs == 0 {
		t.Fatal("graceful decommission recorded no handoffs")
	}
	// The last nodes cannot decommission: someone must hold the data.
	ids := c.MemberIDs()
	for _, id := range ids[:len(ids)-1] {
		if err := c.Decommission(id); err != nil {
			t.Fatalf("decommission %d: %v", id, err)
		}
	}
	if err := c.Decommission(ids[len(ids)-1]); err == nil {
		t.Fatal("decommissioning the final node was allowed")
	}
}

func TestAddNodeJoinsReplicaSets(t *testing.T) {
	// Two nodes, one shard, two replicas wanted: under-replicated until a
	// third node arrives.
	c, err := New(testConfig(1, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	seed(t, c, testNames(3))
	if got := len(c.Topology().Map[0].Followers); got != 1 {
		t.Fatalf("bootstrap followers %d, want 1 (only 2 nodes)", got)
	}
	id := c.AddNode()
	tickUntilConverged(t, c, 0, 10)
	tv := c.Topology()
	if got := len(tv.Map[0].Followers); got != 2 {
		t.Fatalf("followers after addnode %d, want 2", got)
	}
	found := false
	for _, f := range tv.Map[0].Followers {
		if cluster.NodeID(f) == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("new node %d not enlisted: %+v", id, tv.Map[0])
	}
}

// Satellite: kill a shard primary mid-append-storm under -race and assert
// the promoted follower converges to a query-equal catalog at a >= epoch.
// Appends, reads, ticks and the crash run on separate goroutines — the
// race detector patrols the snapshot-isolation and locking story while
// the assertions patrol the failover semantics.
func TestFailoverConvergenceUnderAppendStorm(t *testing.T) {
	cfg := testConfig(2, 2)
	c, err := New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	names := testNames(6)
	seed(t, c, names)
	storm := names[0]
	primary := cluster.NodeID(c.Topology().Map[ShardOf(storm, cfg.Shards)].Primary)

	var (
		done atomic.Bool
		// quiet stops the client goroutines while the clock keeps ticking,
		// so the ship queue can drain for the convergence check.
		quiet   atomic.Bool
		crashed atomic.Bool
		// ackedBeforeCrash is the highest epoch acked to the storm client
		// before the crash: the floor the promoted follower must reach.
		ackedBeforeCrash atomic.Uint64
		wg               sync.WaitGroup
	)
	// Clock: one goroutine owns logical time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		now := 0.0
		for !done.Load() {
			now++
			c.Tick(now)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Storm: append relentlessly, riding out the failover window on
	// retries exactly as a loadgen client would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() && !quiet.Load() {
			sn, err := c.Append(storm, tinyArray(storm, 1))
			switch {
			case err == nil:
				if !crashed.Load() {
					ackedBeforeCrash.Store(sn.Epoch)
				}
			case errors.Is(err, ErrNoLeader), errors.Is(err, ErrNotLeader), errors.Is(err, ErrNodeDown):
				time.Sleep(time.Millisecond) // mid-failover: back off, retry
			default:
				t.Errorf("storm append: %v", err)
				return
			}
		}
	}()
	// Reader: concurrent queries must never see a torn snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() && !quiet.Load() {
			for _, name := range names {
				sn, _, err := c.Read(name)
				if err == nil {
					sn.Arr.EstimateDetailed(name)
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	time.Sleep(20 * time.Millisecond) // let the storm build up epochs
	crashed.Store(true)
	if err := c.Crash(primary); err != nil {
		t.Fatal(err)
	}
	// Stage 1: a new primary takes the storm shard while traffic rides
	// through the window on retries.
	deadline := time.Now().Add(10 * time.Second)
	for {
		tv := c.Topology()
		p := tv.Map[ShardOf(storm, cfg.Shards)].Primary
		if p >= 0 && cluster.NodeID(p) != primary {
			break
		}
		if time.Now().After(deadline) {
			done.Store(true)
			wg.Wait()
			t.Fatalf("no promotion within deadline")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // post-failover storm traffic
	// Stage 2: quiesce the clients — the clock keeps ticking — so the
	// in-flight shipments drain and convergence measures repair, not the
	// storm itself.
	quiet.Store(true)
	for c.Converged() != nil {
		if time.Now().After(deadline) {
			done.Store(true)
			wg.Wait()
			t.Fatalf("no convergence after quiescing clients: %v", c.Converged())
		}
		time.Sleep(time.Millisecond)
	}
	done.Store(true)
	wg.Wait()

	// The promoted follower serves every array (nothing lost), and the
	// storm array at an epoch at or above everything acked pre-crash.
	for _, name := range names {
		sn, _, err := c.Read(name)
		if err != nil {
			t.Fatalf("read %q after failover: %v", name, err)
		}
		total, _, _ := sn.Arr.EstimateDetailed(name)
		if total <= 0 {
			t.Fatalf("array %q lost its records in the failover", name)
		}
	}
	sn, _, err := c.Read(storm)
	if err != nil {
		t.Fatal(err)
	}
	if floor := ackedBeforeCrash.Load(); sn.Epoch < floor {
		t.Fatalf("promoted lineage at epoch %d, below pre-crash acked %d", sn.Epoch, floor)
	}
	for si, owners := range c.PrimaryCensus() {
		if len(owners) > 1 {
			t.Fatalf("shard %d has %d self-declared primaries: %v", si, len(owners), owners)
		}
	}
}
