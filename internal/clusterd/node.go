package clusterd

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"datanet/internal/cluster"
	"datanet/internal/elasticmap"
	"datanet/internal/server"
)

// Typed routing errors. The HTTP layer renders them as 503s with a
// machine-readable kind and Retry-After; the chaos router counts them as
// the (legal) unavailability window of a failover in progress.
var (
	// ErrNotLeader reports a write or read routed to a node that does not
	// lead the array's shard — the client's topology is stale.
	ErrNotLeader = errors.New("clusterd: not the shard leader")
	// ErrNoLeader reports a shard with no live primary — mid-failover.
	ErrNoLeader = errors.New("clusterd: shard has no leader")
	// ErrNodeDown reports a request to a crashed node (the chaos analog
	// of a connection refused).
	ErrNodeDown = errors.New("clusterd: node is down")
	// ErrUnknownArray mirrors server.ErrUnknownArray at cluster scope.
	ErrUnknownArray = errors.New("clusterd: unknown array")
)

// Role is a node's duty for one shard, stamped with the fence it was
// assigned under. A node refuses writes whose shard has re-fenced since.
type Role struct {
	Primary bool
	Fence   uint64
}

// Node is the data plane of one cluster member: a snapshot-isolated
// store holding every replica the node carries (primary and follower),
// plus the shard roles and staleness floors the control plane pushed.
// Reads are served node-locally (lock-free store loads after a brief
// role check); all mutations arrive via the Cluster, which holds its own
// lock first — the lock order is always Cluster.mu → Node.mu.
type Node struct {
	ID cluster.NodeID

	mu    sync.Mutex
	store *server.Store
	roles map[int]Role
	// expect is the per-array staleness floor: serving an epoch below it
	// means the client may have already seen newer data (acked by a
	// primary that died before shipping), so the response is flagged.
	expect map[string]uint64
	// next is the per-array epoch floor appends must clear — promotion
	// sets it to the acked high-water mark so the first post-failover
	// append jumps past every orphaned epoch.
	next map[string]uint64
	// down is ground truth (the chaos injector's crash state), never
	// consulted by the control plane's belief machinery.
	down bool
	// registered flips once the control plane has told the node its
	// roles (possibly "none"); /readyz gates on it.
	registered bool

	cacheSize int
}

func newNode(id cluster.NodeID, cacheSize int) *Node {
	return &Node{
		ID:        id,
		store:     server.NewStore(cacheSize),
		roles:     map[int]Role{},
		expect:    map[string]uint64{},
		next:      map[string]uint64{},
		cacheSize: cacheSize,
	}
}

// Store exposes the node's snapshot store (the embedded query API serves
// straight from it).
func (n *Node) Store() *server.Store {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store
}

// Role reports the node's duty for a shard.
func (n *Node) Role(shard int) (Role, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.roles[shard]
	return r, ok
}

// Ready is the node's readiness check: registered with the control plane
// and not crashed.
func (n *Node) Ready() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return ErrNodeDown
	}
	if !n.registered {
		return errors.New("awaiting role assignment")
	}
	return nil
}

// LedShards lists the shards the node currently leads, ascending.
func (n *Node) LedShards() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []int
	for s, r := range n.roles {
		if r.Primary {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// isDown reads the truth plane.
func (n *Node) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

func (n *Node) setDown(v bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = v
}

// reset wipes the node to a fresh process image: empty store, no roles.
// The metadata service is in-memory, so a crashed node that restarts
// comes back with nothing and resyncs from the current primaries.
func (n *Node) reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.store = server.NewStore(n.cacheSize)
	n.roles = map[int]Role{}
	n.expect = map[string]uint64{}
	n.next = map[string]uint64{}
	n.registered = false
}

// setRole installs one shard duty; expect/nextFloor carry the staleness
// floors of a promotion (nil for follower or initial assignments).
func (n *Node) setRole(shard int, r Role, floors map[string]uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.roles[shard] = r
	for name, e := range floors {
		if e > n.expect[name] {
			n.expect[name] = e
		}
		if e > n.next[name] {
			n.next[name] = e
		}
	}
	n.registered = true
}

// clearRole revokes one shard duty (deposition or follower removal).
func (n *Node) clearRole(shard int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.roles, shard)
}

// markRegistered flips readiness for nodes that legitimately hold no
// roles yet (a fresh addnode before any repair pulls it in).
func (n *Node) markRegistered() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.registered = true
}

// Lookup is the node-local read path: resolve the array's snapshot if —
// and only if — this node currently leads its shard. The stale flag
// reports an epoch below the promotion floor: the data is real but older
// than something a client may already have been acked.
func (n *Node) Lookup(name string, shards int) (sn *server.Snapshot, stale bool, err error) {
	shard := ShardOf(name, shards)
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return nil, false, ErrNodeDown
	}
	r, ok := n.roles[shard]
	if !ok || !r.Primary {
		n.mu.Unlock()
		return nil, false, fmt.Errorf("%w: shard %d", ErrNotLeader, shard)
	}
	floor := n.expect[name]
	store := n.store
	n.mu.Unlock()
	sn, ok = store.Get(name)
	if !ok {
		return nil, false, fmt.Errorf("%w: %q", ErrUnknownArray, name)
	}
	return sn, sn.Epoch < floor, nil
}

// appendLocal merges more into name at the next epoch above both the
// current snapshot and the promotion floor, under a fence check: a
// deposed primary whose shard re-fenced refuses the write. Caller holds
// the cluster lock.
func (n *Node) appendLocal(shard int, fence uint64, name string, more *elasticmap.Array) (*server.Snapshot, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, ErrNodeDown
	}
	r, ok := n.roles[shard]
	if !ok || !r.Primary || r.Fence != fence {
		return nil, fmt.Errorf("%w: shard %d fenced", ErrNotLeader, shard)
	}
	prev, ok := n.store.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownArray, name)
	}
	epoch := prev.Epoch
	if f := n.next[name]; f > epoch {
		epoch = f
	}
	sn, err := n.store.PutEpoch(name, elasticmap.Merge(prev.Arr, more), epoch+1)
	if err != nil {
		return nil, err
	}
	// The write supersedes every orphaned epoch: clear the floors.
	delete(n.next, name)
	if sn.Epoch >= n.expect[name] {
		delete(n.expect, name)
	}
	return sn, nil
}

// putLocal installs (or replaces) an array wholesale at the next epoch
// above the floors, under the same fence discipline as appendLocal.
func (n *Node) putLocal(shard int, fence uint64, name string, arr *elasticmap.Array) (*server.Snapshot, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, ErrNodeDown
	}
	r, ok := n.roles[shard]
	if !ok || !r.Primary || r.Fence != fence {
		return nil, fmt.Errorf("%w: shard %d fenced", ErrNotLeader, shard)
	}
	var epoch uint64
	if prev, ok := n.store.Get(name); ok {
		epoch = prev.Epoch
	}
	if f := n.next[name]; f > epoch {
		epoch = f
	}
	sn, err := n.store.PutEpoch(name, arr, epoch+1)
	if err != nil {
		return nil, err
	}
	delete(n.next, name)
	if sn.Epoch >= n.expect[name] {
		delete(n.expect, name)
	}
	return sn, nil
}

// applyReplica is the follower side of snapshot shipping: install the
// shipped epoch if it advances the local copy. It returns the epoch the
// follower now holds (its ack). A down node acks nothing.
func (n *Node) applyReplica(name string, arr *elasticmap.Array, epoch uint64) (acked uint64, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return 0, false
	}
	if prev, ok := n.store.Get(name); ok && prev.Epoch >= epoch {
		return prev.Epoch, true // duplicate or stale ship: already there
	}
	if _, err := n.store.PutEpoch(name, arr, epoch); err != nil {
		return 0, false
	}
	return epoch, true
}

// localEpochs snapshots the node's applied epoch per array — the
// freshness evidence promotion ranks candidates by.
func (n *Node) localEpochs() map[string]uint64 {
	n.mu.Lock()
	store := n.store
	n.mu.Unlock()
	out := map[string]uint64{}
	for _, name := range store.Names() {
		if sn, ok := store.Get(name); ok {
			out[name] = sn.Epoch
		}
	}
	return out
}
