package clusterd

import (
	"testing"

	"datanet/internal/cluster"
)

func TestShardOfStableAndInRange(t *testing.T) {
	// Pinned values: clients and servers must agree across processes and
	// releases, or routing silently breaks.
	if got := ShardOf("arr-00", 4); got != ShardOf("arr-00", 4) {
		t.Fatal("ShardOf not deterministic")
	}
	for _, shards := range []int{1, 2, 4, 7, 16} {
		for i := 0; i < 100; i++ {
			name := string(rune('a'+i%26)) + "x"
			if got := ShardOf(name, shards); got < 0 || got >= shards {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", name, shards, got)
			}
		}
	}
}

func TestRendezvousRankConsistency(t *testing.T) {
	ids := []cluster.NodeID{0, 1, 2, 3, 4}
	for shard := 0; shard < 8; shard++ {
		rank := rendezvousRank(shard, ids)
		if len(rank) != len(ids) {
			t.Fatalf("rank dropped ids: %v", rank)
		}
		top := rank[0]
		// Removing a node that is not the winner must not change the
		// winner — the consistent-hashing property that keeps topology
		// changes from reshuffling unaffected shards.
		for _, gone := range ids {
			if gone == top {
				continue
			}
			var rest []cluster.NodeID
			for _, id := range ids {
				if id != gone {
					rest = append(rest, id)
				}
			}
			if got := rendezvousRank(shard, rest)[0]; got != top {
				t.Fatalf("shard %d: removing %d changed winner %d -> %d", shard, gone, top, got)
			}
		}
	}
}

func TestRendezvousSpreadsPrimaries(t *testing.T) {
	// With 16 shards over 5 nodes, no node should win everything.
	ids := []cluster.NodeID{0, 1, 2, 3, 4}
	wins := map[cluster.NodeID]int{}
	for shard := 0; shard < 16; shard++ {
		wins[rendezvousRank(shard, ids)[0]]++
	}
	for id, n := range wins {
		if n == 16 {
			t.Fatalf("node %d won all shards; rendezvous not spreading", id)
		}
	}
	if len(wins) < 3 {
		t.Fatalf("primaries concentrated on %d nodes: %v", len(wins), wins)
	}
}
