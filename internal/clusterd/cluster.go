package clusterd

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"datanet/internal/cluster"
	"datanet/internal/detect"
	"datanet/internal/elasticmap"
	"datanet/internal/placement"
	"datanet/internal/server"
)

// DefaultShipDelay is the logical delay between a primary publishing an
// epoch and its shipment arriving at a follower: one tick, so the chaos
// harness always has a window in which a crash can orphan an acked epoch.
const DefaultShipDelay = 1.0

// ErrBadConfig reports an invalid cluster configuration.
var ErrBadConfig = errors.New("clusterd: invalid config")

// Config parameterizes the cluster control plane.
type Config struct {
	// Shards is the number of catalog partitions (ShardOf's modulus).
	Shards int
	// Replicas is K, the follower count per shard (when enough nodes
	// exist; fewer nodes replicate as widely as they can).
	Replicas int
	// Detect configures the heartbeat tracker. Oracle mode is promoted to
	// Heartbeat: a cluster cannot read the fault injector's mind.
	Detect detect.Config
	// ShipDelay is the time between publishing an epoch and its shipment
	// reaching a follower. Zero selects DefaultShipDelay.
	ShipDelay float64
	// CacheSize sizes each node store's per-epoch result caches.
	CacheSize int
	// Logger, when non-nil, receives structured control-plane events
	// (suspicions, failovers, membership changes). Nil — the default —
	// keeps the control plane silent, which the chaos goldens rely on.
	Logger *slog.Logger
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Detect.Mode == detect.Oracle {
		c.Detect.Mode = detect.Heartbeat
	}
	c.Detect = c.Detect.WithDefaults()
	if c.ShipDelay <= 0 {
		c.ShipDelay = DefaultShipDelay
	}
	return c
}

// Validate rejects unusable parameters.
func (c Config) Validate() error {
	if c.Shards <= 0 {
		return fmt.Errorf("%w: shards %d must be positive", ErrBadConfig, c.Shards)
	}
	if c.Replicas <= 0 {
		return fmt.Errorf("%w: replicas %d must be positive", ErrBadConfig, c.Replicas)
	}
	if c.ShipDelay <= 0 {
		return fmt.Errorf("%w: ship delay %v must be positive", ErrBadConfig, c.ShipDelay)
	}
	return c.Detect.Validate()
}

// member is the control plane's view of one node: the data-plane handle
// plus admin intent (leaving) and detector belief (suspected).
type member struct {
	node      *Node
	addr      string
	leaving   bool
	suspected bool
}

// shardState is the control plane's book on one shard.
type shardState struct {
	// fence increments on every leadership change; shipments cut under an
	// older fence are dropped on delivery.
	fence uint64
	// primary is the serving node, -1 while leaderless (mid-failover with
	// no eligible successor).
	primary cluster.NodeID
	// followers lists the replica set, sorted. Suspected members stay
	// listed (their data may come back); leaving and wiped ones are
	// removed by repair.
	followers []cluster.NodeID
	// published maps array → the epoch of the current lineage followers
	// must reach. It rolls back to the winner's state at promotion.
	published map[string]uint64
	// acked maps array → the highest epoch ever acknowledged to a client.
	// Monotonic: it never rolls back, which is exactly why a promoted
	// follower can know which of its epochs are stale.
	acked map[string]uint64
	// acks maps follower → array → the epoch it has applied.
	acks map[cluster.NodeID]map[string]uint64
}

// shipKey dedups in-flight shipments: at most one per (shard, follower,
// array) so append storms cannot grow the queue without bound.
type shipKey struct {
	shard int
	to    cluster.NodeID
	name  string
}

// shipment is one snapshot in flight from a primary to a follower.
type shipment struct {
	due   float64
	shard int
	fence uint64
	to    cluster.NodeID
	name  string
	arr   *elasticmap.Array
	epoch uint64
}

// Cluster is the sharded, replicated metadata service's control plane:
// membership, shard assignment, snapshot shipping, failure detection and
// failover. All state mutates under one mutex and time advances only
// through Tick, so the chaos harness (logical clock) and the serving
// daemon (wall clock) exercise identical code.
type Cluster struct {
	mu      sync.Mutex
	cfg     Config
	members map[cluster.NodeID]*member
	shards  []*shardState
	tracker *detect.Tracker
	ships   []shipment
	pending map[shipKey]bool
	now     float64
	nextID  cluster.NodeID
	gen     uint64
	log     *slog.Logger

	// metricsSources maps node → its serving layer's metric dump hook;
	// the /admin/metrics rollup merges them in ascending node order.
	metricsSources map[cluster.NodeID]func() server.MetricsDump

	promotions     int
	handoffs       int
	droppedShips   int
	shipsDelivered int
}

// New builds a cluster of n fresh nodes and assigns every shard a primary
// and min(Replicas, n-1) followers by rendezvous rank.
func New(cfg Config, n int) (*Cluster, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: need at least one node, got %d", ErrBadConfig, n)
	}
	tracker, err := detect.NewTracker(cfg.Detect)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:            cfg,
		members:        make(map[cluster.NodeID]*member, n),
		shards:         make([]*shardState, cfg.Shards),
		tracker:        tracker,
		pending:        map[shipKey]bool{},
		gen:            1,
		log:            cfg.Logger,
		metricsSources: map[cluster.NodeID]func() server.MetricsDump{},
	}
	ids := make([]cluster.NodeID, n)
	for i := 0; i < n; i++ {
		id := cluster.NodeID(i)
		ids[i] = id
		nd := newNode(id, cfg.CacheSize)
		nd.markRegistered()
		c.members[id] = &member{node: nd}
		c.tracker.Watch(int(id), 0)
	}
	c.nextID = cluster.NodeID(n)
	for si := range c.shards {
		s := &shardState{
			fence:     1,
			primary:   -1,
			published: map[string]uint64{},
			acked:     map[string]uint64{},
			acks:      map[cluster.NodeID]map[string]uint64{},
		}
		rank := rendezvousRank(si, ids)
		s.primary = rank[0]
		c.members[rank[0]].node.setRole(si, Role{Primary: true, Fence: 1}, nil)
		k := c.cfg.Replicas
		if k > len(rank)-1 {
			k = len(rank) - 1
		}
		for _, f := range rank[1 : 1+k] {
			c.members[f].node.setRole(si, Role{Fence: 1}, nil)
			s.followers = append(s.followers, f)
			s.acks[f] = map[string]uint64{}
		}
		sortIDs(s.followers)
		c.shards[si] = s
	}
	return c, nil
}

// Shards returns the shard count (ShardOf's modulus for this cluster).
func (c *Cluster) Shards() int { return c.cfg.Shards }

// Logger returns the configured event logger, nil when logging is off.
func (c *Cluster) Logger() *slog.Logger { return c.log }

// logEvent emits one structured control-plane event when logging is on.
// Callers hold c.mu; the handler writes outside any cluster state.
func (c *Cluster) logEvent(msg string, args ...any) {
	if c.log != nil {
		c.log.Info(msg, args...)
	}
}

// RegisterMetricsSource hooks a node's metric dump into the cluster-wide
// rollup. The serving layer registers each node's server.DumpMetrics.
func (c *Cluster) RegisterMetricsSource(id cluster.NodeID, fn func() server.MetricsDump) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metricsSources[id] = fn
}

// MetricsDumps snapshots every registered node's metrics, ascending by
// node ID — the fixed merge order the rollup-equality test relies on.
// The dumps are taken outside the cluster lock (the serving layer has
// its own synchronization), so a scrape cannot stall the control plane.
func (c *Cluster) MetricsDumps() []server.MetricsDump {
	c.mu.Lock()
	ids := make([]cluster.NodeID, 0, len(c.metricsSources))
	for id := range c.metricsSources {
		ids = append(ids, id)
	}
	sortIDs(ids)
	fns := make([]func() server.MetricsDump, 0, len(ids))
	for _, id := range ids {
		fns = append(fns, c.metricsSources[id])
	}
	c.mu.Unlock()
	out := make([]server.MetricsDump, 0, len(fns))
	for _, fn := range fns {
		out = append(out, fn())
	}
	return out
}

// RetryHint is the backoff the typed 503s suggest to clients: one
// heartbeat interval, the granularity at which routing state changes.
func (c *Cluster) RetryHint() float64 { return c.cfg.Detect.Interval }

// Now returns the last Tick instant.
func (c *Cluster) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Gen returns the topology generation; it bumps on every role or
// membership change, so clients know when to refresh their shard map.
func (c *Cluster) Gen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Node returns a member's data-plane handle (HTTP wiring, chaos census).
func (c *Cluster) Node(id cluster.NodeID) (*Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return nil, false
	}
	return m.node, true
}

// MemberIDs lists current members, ascending.
func (c *Cluster) MemberIDs() []cluster.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memberIDs()
}

func (c *Cluster) memberIDs() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(c.members))
	for id := range c.members {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// SetAddr records a member's serving address for the topology view.
func (c *Cluster) SetAddr(id cluster.NodeID, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[id]; ok {
		m.addr = addr
	}
}

// Load seeds an array: install it on the shard's primary and replicate
// synchronously to every reachable follower. This is the bootstrap path
// (datasets loaded before serving starts); steady-state writes go through
// Append and asynchronous shipping.
func (c *Cluster) Load(name string, arr *elasticmap.Array) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	si := ShardOf(name, c.cfg.Shards)
	s := c.shards[si]
	if s.primary < 0 {
		return fmt.Errorf("%w: shard %d", ErrNoLeader, si)
	}
	pm := c.members[s.primary]
	sn, err := pm.node.putLocal(si, s.fence, name, arr)
	if err != nil {
		return err
	}
	s.published[name] = sn.Epoch
	if sn.Epoch > s.acked[name] {
		s.acked[name] = sn.Epoch
	}
	for _, f := range s.followers {
		fm, ok := c.members[f]
		if !ok || fm.suspected {
			continue
		}
		if acked, ok := fm.node.applyReplica(name, sn.Arr, sn.Epoch); ok {
			c.recordAck(s, f, name, acked)
		}
	}
	return nil
}

// Append routes a write through the shard map to the current primary.
func (c *Cluster) Append(name string, more *elasticmap.Array) (*server.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.shards[ShardOf(name, c.cfg.Shards)]
	if s.primary < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoLeader, name)
	}
	return c.appendAt(s.primary, name, more)
}

// AppendAt sends a write to a specific node, as a client with a possibly
// stale shard map would. Non-leaders refuse with ErrNotLeader.
func (c *Cluster) AppendAt(id cluster.NodeID, name string, more *elasticmap.Array) (*server.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appendAt(id, name, more)
}

func (c *Cluster) appendAt(id cluster.NodeID, name string, more *elasticmap.Array) (*server.Snapshot, error) {
	m, ok := c.members[id]
	if !ok {
		return nil, fmt.Errorf("%w: node %d not a member", ErrNodeDown, id)
	}
	si := ShardOf(name, c.cfg.Shards)
	r, ok := m.node.Role(si)
	if !ok || !r.Primary {
		return nil, fmt.Errorf("%w: shard %d at node %d", ErrNotLeader, si, id)
	}
	sn, err := m.node.appendLocal(si, r.Fence, name, more)
	if err != nil {
		return nil, err
	}
	c.publish(si, id, r.Fence, name, sn)
	return sn, nil
}

// PutAt installs an array wholesale at a specific node — the cluster PUT
// path. Like appends it publishes the new epoch and ships it out.
func (c *Cluster) PutAt(id cluster.NodeID, name string, arr *elasticmap.Array) (*server.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return nil, fmt.Errorf("%w: node %d not a member", ErrNodeDown, id)
	}
	si := ShardOf(name, c.cfg.Shards)
	r, ok := m.node.Role(si)
	if !ok || !r.Primary {
		return nil, fmt.Errorf("%w: shard %d at node %d", ErrNotLeader, si, id)
	}
	sn, err := m.node.putLocal(si, r.Fence, name, arr)
	if err != nil {
		return nil, err
	}
	c.publish(si, id, r.Fence, name, sn)
	return sn, nil
}

// publish is the ack point of a write: record the epoch as published
// (followers must reach it) and acked (a client has seen it), then fan it
// out asynchronously. A write that raced a re-fence is not booked — its
// node-side effect is superseded by the new lineage's floors.
func (c *Cluster) publish(si int, id cluster.NodeID, fence uint64, name string, sn *server.Snapshot) {
	s := c.shards[si]
	if s.primary != id || fence != s.fence {
		return
	}
	s.published[name] = sn.Epoch
	if sn.Epoch > s.acked[name] {
		s.acked[name] = sn.Epoch
	}
	c.ship(si, name, sn)
}

// Read routes a query through the shard map to the current primary.
// stale reports an epoch below the shard's acked high-water mark.
func (c *Cluster) Read(name string) (sn *server.Snapshot, stale bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.shards[ShardOf(name, c.cfg.Shards)]
	if s.primary < 0 {
		return nil, false, fmt.Errorf("%w: %q", ErrNoLeader, name)
	}
	return c.readAt(s.primary, name)
}

// ReadAt queries a specific node; non-leaders refuse.
func (c *Cluster) ReadAt(id cluster.NodeID, name string) (sn *server.Snapshot, stale bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readAt(id, name)
}

func (c *Cluster) readAt(id cluster.NodeID, name string) (*server.Snapshot, bool, error) {
	m, ok := c.members[id]
	if !ok {
		return nil, false, fmt.Errorf("%w: node %d not a member", ErrNodeDown, id)
	}
	sn, stale, err := m.node.Lookup(name, c.cfg.Shards)
	if err != nil {
		return nil, false, err
	}
	// Serving an epoch is acking it: a later read below this epoch must
	// carry the stale flag.
	s := c.shards[ShardOf(name, c.cfg.Shards)]
	if sn.Epoch > s.acked[name] {
		s.acked[name] = sn.Epoch
	}
	return sn, stale, nil
}

// ship enqueues sn to every reachable follower of shard si, capped at one
// in-flight shipment per (follower, array); repair re-ships any gap left
// by the cap once the in-flight one lands.
func (c *Cluster) ship(si int, name string, sn *server.Snapshot) {
	s := c.shards[si]
	for _, f := range s.followers {
		fm, ok := c.members[f]
		if !ok || fm.suspected {
			continue
		}
		key := shipKey{shard: si, to: f, name: name}
		if c.pending[key] {
			continue
		}
		c.pending[key] = true
		c.ships = append(c.ships, shipment{
			due: c.now + c.cfg.ShipDelay, shard: si, fence: s.fence,
			to: f, name: name, arr: sn.Arr, epoch: sn.Epoch,
		})
	}
}

// deliverShips lands every shipment due by now, in FIFO order. A shipment
// cut under an older fence is dropped: the deposed primary's unshipped
// epochs must never overwrite the new lineage.
func (c *Cluster) deliverShips(now float64) {
	keep := c.ships[:0]
	for _, sh := range c.ships {
		if sh.due > now {
			keep = append(keep, sh)
			continue
		}
		delete(c.pending, shipKey{shard: sh.shard, to: sh.to, name: sh.name})
		s := c.shards[sh.shard]
		if s.fence != sh.fence || !containsID(s.followers, sh.to) {
			c.droppedShips++
			continue
		}
		fm, ok := c.members[sh.to]
		if !ok {
			c.droppedShips++
			continue
		}
		acked, ok := fm.node.applyReplica(sh.name, sh.arr, sh.epoch)
		if !ok {
			continue // down: no ack; repair retries after recovery
		}
		c.shipsDelivered++
		c.recordAck(s, sh.to, sh.name, acked)
	}
	c.ships = keep
}

func (c *Cluster) recordAck(s *shardState, f cluster.NodeID, name string, epoch uint64) {
	am := s.acks[f]
	if am == nil {
		am = map[string]uint64{}
		s.acks[f] = am
	}
	if epoch > am[name] {
		am[name] = epoch
	}
}

// Tick advances the control plane to now: land due shipments, collect
// heartbeats from live nodes, mature suspicion timeouts, fail over shards
// whose primary is newly suspected, and repair toward the desired
// topology. The chaos harness calls it with a logical clock; the daemon
// calls it from a wall-clock ticker.
func (c *Cluster) Tick(now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now < c.now {
		now = c.now
	}
	c.now = now
	c.deliverShips(now)
	for _, id := range c.memberIDs() {
		m := c.members[id]
		if m.node.isDown() {
			continue // a dead node's beats do not arrive
		}
		if c.tracker.Beat(int(id), now) {
			m.suspected = false // false alarm cleared by the beat
		}
	}
	for _, id := range c.tracker.Sweep(now) {
		c.onSuspect(cluster.NodeID(id))
	}
	c.repair()
}

// onSuspect reacts to a matured suspicion: mark the member and fail over
// every shard it leads. Its follower slots stay listed — if the suspicion
// proves false the data is still there — but shipping and promotion skip
// suspected members until a beat clears them.
func (c *Cluster) onSuspect(id cluster.NodeID) {
	m, ok := c.members[id]
	if !ok {
		return
	}
	m.suspected = true
	c.logEvent("node suspected", "node", int(id), "now", c.now)
	for si, s := range c.shards {
		if s.primary == id {
			c.failover(si)
		}
	}
}

// failover deposes shard si's primary: bump the fence (stranding its
// unshipped epochs), elect the freshest eligible follower, and hand the
// winner the acked high-water marks so it can flag stale reads. With no
// eligible successor the shard goes leaderless until repair finds one.
func (c *Cluster) failover(si int) {
	s := c.shards[si]
	old := s.primary
	winner, ok := c.electFrom(si, s.followers)
	if !ok {
		s.fence++
		c.gen++
		s.primary = -1
		c.depose(old, si)
		c.logEvent("shard leaderless", "shard", si, "fence", s.fence, "deposed", int(old))
		return
	}
	c.promotions++
	c.promote(si, winner, old, false)
}

// electFrom picks the freshest eligible candidate: reachable (the master
// queries each candidate's applied epochs — a synchronous call a down node
// fails), not suspected, preferring non-leaving nodes, ranked by summed
// applied epochs over the shard's arrays, ties by rendezvous order.
func (c *Cluster) electFrom(si int, candidates []cluster.NodeID) (cluster.NodeID, bool) {
	type cand struct {
		id      cluster.NodeID
		leaving bool
		sum     uint64
	}
	var cands []cand
	for _, id := range candidates {
		m, ok := c.members[id]
		if !ok || m.suspected || m.node.isDown() {
			continue
		}
		var sum uint64
		for name, e := range m.node.localEpochs() {
			if ShardOf(name, c.cfg.Shards) == si {
				sum += e
			}
		}
		cands = append(cands, cand{id: id, leaving: m.leaving, sum: sum})
	}
	if len(cands) == 0 {
		return -1, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].leaving != cands[j].leaving {
			return !cands[i].leaving // non-leaving first
		}
		if cands[i].sum != cands[j].sum {
			return cands[i].sum > cands[j].sum
		}
		ri, rj := rendezvousScore(si, cands[i].id), rendezvousScore(si, cands[j].id)
		if ri != rj {
			return ri > rj
		}
		return cands[i].id < cands[j].id
	})
	return cands[0].id, true
}

// promote installs winner as shard si's primary behind a new fence.
// published rolls back to what the winner actually holds (asynchronous
// shipping may have lost the tail), while acked — the client-visible
// high-water mark — travels to the winner as its staleness floor.
// graceful keeps the deposed primary enlisted as a caught-up follower.
func (c *Cluster) promote(si int, winner, old cluster.NodeID, graceful bool) {
	s := c.shards[si]
	s.fence++
	c.gen++
	wm := c.members[winner]
	pub := map[string]uint64{}
	for name, e := range wm.node.localEpochs() {
		if ShardOf(name, c.cfg.Shards) == si {
			pub[name] = e
		}
	}
	s.published = pub
	s.followers = removeID(s.followers, winner)
	delete(s.acks, winner)
	floors := make(map[string]uint64, len(s.acked))
	for name, e := range s.acked {
		floors[name] = e
	}
	wm.node.setRole(si, Role{Primary: true, Fence: s.fence}, floors)
	s.primary = winner
	c.logEvent("shard primary promoted",
		"shard", si, "winner", int(winner), "deposed", int(old),
		"fence", s.fence, "graceful", graceful)
	if old < 0 {
		return
	}
	om, ok := c.members[old]
	if !ok {
		return
	}
	if graceful {
		// The old primary holds everything published; keep it as a
		// follower so the handoff never reduces the replica count.
		om.node.clearRole(si)
		om.node.setRole(si, Role{Fence: s.fence}, nil)
		s.followers = append(s.followers, old)
		sortIDs(s.followers)
		oacks := map[string]uint64{}
		for name, e := range om.node.localEpochs() {
			if ShardOf(name, c.cfg.Shards) == si {
				oacks[name] = e
			}
		}
		s.acks[old] = oacks
		return
	}
	c.depose(old, si)
}

// depose delivers the you-are-not-primary message. A down node cannot
// receive it — honest delivery — but a wiped restart discards the stale
// role anyway, and a falsely-suspected live node must drop it now so at
// most one node per shard believes itself primary among the reachable.
func (c *Cluster) depose(old cluster.NodeID, si int) {
	if om, ok := c.members[old]; ok && !om.node.isDown() {
		om.node.clearRole(si)
	}
}

// Crash marks a node dead in the truth plane. The control plane is not
// told: it learns from missed heartbeats, pays the detection latency, and
// only then fails over — exactly the gap the chaos invariants probe.
func (c *Cluster) Crash(id cluster.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return fmt.Errorf("clusterd: crash of unknown node %d", id)
	}
	m.node.setDown(true)
	return nil
}

// Rejoin restarts a crashed node as an empty process: its store is wiped
// (the service is in-memory) and it re-registers with the control plane,
// which strips every role the old incarnation held — a restarted node
// must never resume a leadership it no longer backs with data.
func (c *Cluster) Rejoin(id cluster.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return fmt.Errorf("clusterd: rejoin of unknown node %d", id)
	}
	for _, s := range c.shards {
		if containsID(s.followers, id) {
			s.followers = removeID(s.followers, id)
			delete(s.acks, id)
			c.gen++
		}
	}
	for si, s := range c.shards {
		if s.primary == id {
			c.failover(si)
		}
	}
	m.node.reset()
	m.node.setDown(false)
	m.node.markRegistered()
	m.suspected = false
	c.tracker.Forget(int(id))
	c.tracker.Watch(int(id), c.now)
	c.gen++
	c.logEvent("node rejoined", "node", int(id), "gen", c.gen)
	c.repair()
	return nil
}

// AddNode grows the cluster by one empty member; repair pulls it into the
// shards whose rendezvous ranking it enters.
func (c *Cluster) AddNode() cluster.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	nd := newNode(id, c.cfg.CacheSize)
	nd.markRegistered()
	c.members[id] = &member{node: nd}
	c.tracker.Watch(int(id), c.now)
	c.gen++
	c.logEvent("node added", "node", int(id), "gen", c.gen)
	c.repair()
	return id
}

// Decommission marks a node for graceful removal: it keeps serving until
// repair has handed off every primary role to a caught-up follower and
// replaced its follower slots, then it is dropped from membership.
func (c *Cluster) Decommission(id cluster.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return fmt.Errorf("clusterd: decommission of unknown node %d", id)
	}
	if m.leaving {
		return nil
	}
	staying := 0
	for _, om := range c.members {
		if !om.leaving {
			staying++
		}
	}
	if staying < 2 {
		return fmt.Errorf("clusterd: cannot decommission node %d: no node left to hand off to", id)
	}
	m.leaving = true
	c.gen++
	c.logEvent("node decommissioning", "node", int(id), "gen", c.gen)
	c.repair()
	return nil
}

// eligible lists members fit for new replica duty on any shard: present,
// believed live, and not on their way out. Sorted for determinism.
func (c *Cluster) eligible() []cluster.NodeID {
	var out []cluster.NodeID
	for id, m := range c.members {
		if !m.suspected && !m.leaving {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

// caughtUp reports whether follower f has acked every published epoch of
// shard s.
func (c *Cluster) caughtUp(s *shardState, f cluster.NodeID) bool {
	am := s.acks[f]
	for name, e := range s.published {
		if am[name] < e {
			return false
		}
	}
	return true
}

// repair drives the cluster toward its desired shape; it is idempotent
// and runs every tick. Leaderless shards elect; leaving primaries hand
// off to caught-up followers; follower slots refill by rendezvous rank;
// leaving followers retire once their replacements caught up; ack gaps
// re-ship; fully-relieved leaving members are dropped.
func (c *Cluster) repair() {
	eligible := c.eligible()
	for si, s := range c.shards {
		if s.primary < 0 {
			if winner, ok := c.electFrom(si, s.followers); ok {
				c.promotions++
				c.promote(si, winner, -1, false)
			} else {
				continue // nothing to lead with; wait for recovery
			}
		}
		pm := c.members[s.primary]
		if pm.leaving {
			if w, ok := c.handoffTarget(si); ok {
				c.handoffs++
				c.promote(si, w, s.primary, true)
				pm = c.members[s.primary]
			}
		}
		c.fillFollowers(si, eligible)
		c.retireLeavingFollowers(si)
		if !pm.suspected && !pm.node.isDown() {
			c.reship(si)
		}
	}
	// A leaving member relieved of every duty leaves for real.
	for _, id := range c.memberIDs() {
		m := c.members[id]
		if m.leaving && !c.holdsAnyRole(id) {
			delete(c.members, id)
			c.tracker.Forget(int(id))
			c.gen++
		}
	}
}

// handoffTarget picks the follower a leaving primary hands shard si to:
// fully caught up (the graceful path never loses epochs), believed live,
// staying. First match in rendezvous order keeps the choice deterministic.
func (c *Cluster) handoffTarget(si int) (cluster.NodeID, bool) {
	s := c.shards[si]
	for _, f := range rendezvousRank(si, s.followers) {
		m, ok := c.members[f]
		if !ok || m.suspected || m.leaving || m.node.isDown() {
			continue
		}
		if c.caughtUp(s, f) {
			return f, true
		}
	}
	return -1, false
}

// fillFollowers tops shard si's staying, believed-live follower count up
// to min(Replicas, eligible peers), enlisting nodes in rendezvous order.
// Enlistment is a delivered message: down candidates are skipped.
func (c *Cluster) fillFollowers(si int, eligible []cluster.NodeID) {
	s := c.shards[si]
	desired := c.cfg.Replicas
	avail := 0
	for _, id := range eligible {
		if id != s.primary {
			avail++
		}
	}
	if desired > avail {
		desired = avail
	}
	have := 0
	for _, f := range s.followers {
		if m, ok := c.members[f]; ok && !m.suspected && !m.leaving {
			have++
		}
	}
	if have >= desired {
		return
	}
	// The rendezvous Policy walks the ranking skipping the primary and
	// current followers (Have) and down nodes (Veto) — the same candidate
	// sequence the historical inline loop produced.
	chosen, _ := placement.Rendezvous{Shard: si}.Choose(placement.Request{
		Candidates: eligible,
		Want:       desired - have,
		Partial:    true,
		Have:       append(append([]cluster.NodeID(nil), s.followers...), s.primary),
		Veto: func(id cluster.NodeID) placement.VetoReason {
			if m, ok := c.members[id]; !ok || m.node.isDown() {
				return placement.VetoDead
			}
			return placement.VetoNone
		},
	})
	for _, id := range chosen {
		m := c.members[id]
		m.node.setRole(si, Role{Fence: s.fence}, nil)
		s.followers = append(s.followers, id)
		sortIDs(s.followers)
		if s.acks[id] == nil {
			s.acks[id] = map[string]uint64{}
		}
		c.gen++
	}
}

// retireLeavingFollowers drops leaving followers of shard si once the
// staying followers alone satisfy the replica count fully caught up —
// removing them earlier could strand the only copy of a recent epoch.
func (c *Cluster) retireLeavingFollowers(si int) {
	s := c.shards[si]
	var staying, leaving []cluster.NodeID
	for _, f := range s.followers {
		m, ok := c.members[f]
		if !ok {
			continue
		}
		if m.leaving {
			leaving = append(leaving, f)
		} else if !m.suspected {
			staying = append(staying, f)
		}
	}
	if len(leaving) == 0 {
		return
	}
	desired := c.cfg.Replicas
	avail := 0
	for _, id := range c.eligible() {
		if id != s.primary {
			avail++
		}
	}
	if desired > avail {
		desired = avail
	}
	if len(staying) < desired {
		return
	}
	for _, f := range staying {
		if !c.caughtUp(s, f) {
			return
		}
	}
	for _, f := range leaving {
		c.depose(f, si)
		s.followers = removeID(s.followers, f)
		delete(s.acks, f)
		c.gen++
	}
}

// reship closes ack gaps: any follower behind the published epoch of any
// array gets the primary's current snapshot, one in-flight shipment per
// (follower, array). This is both the retry path for deliveries that
// failed against a down node and the catch-up path for fresh followers.
func (c *Cluster) reship(si int) {
	s := c.shards[si]
	pm := c.members[s.primary]
	for _, f := range s.followers {
		fm, ok := c.members[f]
		if !ok || fm.suspected {
			continue
		}
		for _, name := range sortedNames(s.published) {
			if s.acks[f][name] >= s.published[name] {
				continue
			}
			key := shipKey{shard: si, to: f, name: name}
			if c.pending[key] {
				continue
			}
			sn, ok := pm.node.Store().Get(name)
			if !ok {
				continue
			}
			c.pending[key] = true
			c.ships = append(c.ships, shipment{
				due: c.now + c.cfg.ShipDelay, shard: si, fence: s.fence,
				to: f, name: name, arr: sn.Arr, epoch: sn.Epoch,
			})
		}
	}
}

// holdsAnyRole reports whether the control plane still counts id as a
// primary or follower anywhere.
func (c *Cluster) holdsAnyRole(id cluster.NodeID) bool {
	for _, s := range c.shards {
		if s.primary == id || containsID(s.followers, id) {
			return true
		}
	}
	return false
}

// Converged verifies the cluster is quiescent and fully repaired: every
// shard has a live primary and a full complement of caught-up staying
// followers, no shipments are in flight, and no member is half-departed.
// The chaos harness asserts nil within a bounded number of post-fault
// ticks; a non-nil error names the first violation.
func (c *Cluster) Converged() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.memberIDs() {
		if c.members[id].leaving {
			return fmt.Errorf("member %d still leaving", id)
		}
	}
	if len(c.ships) > 0 {
		return fmt.Errorf("%d shipments in flight", len(c.ships))
	}
	eligible := c.eligible()
	for si, s := range c.shards {
		if s.primary < 0 {
			return fmt.Errorf("shard %d leaderless", si)
		}
		pm, ok := c.members[s.primary]
		if !ok || pm.suspected || pm.node.isDown() {
			return fmt.Errorf("shard %d primary %d not live", si, s.primary)
		}
		desired := c.cfg.Replicas
		avail := 0
		for _, id := range eligible {
			if id != s.primary {
				avail++
			}
		}
		if desired > avail {
			desired = avail
		}
		live := 0
		for _, f := range s.followers {
			m, ok := c.members[f]
			if !ok || m.suspected {
				continue
			}
			live++
			if !c.caughtUp(s, f) {
				return fmt.Errorf("shard %d follower %d behind published", si, f)
			}
		}
		if live < desired {
			return fmt.Errorf("shard %d has %d live followers, wants %d", si, live, desired)
		}
	}
	return nil
}

// PrimaryCensus polls every reachable node's own belief about which
// shards it leads — the node-local truth the exactly-one-primary
// invariant checks, as opposed to the control plane's book.
func (c *Cluster) PrimaryCensus() map[int][]cluster.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[int][]cluster.NodeID{}
	for _, id := range c.memberIDs() {
		m := c.members[id]
		if m.node.isDown() {
			continue
		}
		for _, si := range m.node.LedShards() {
			out[si] = append(out[si], id)
		}
	}
	return out
}

// Stats reports the control plane's lifetime counters.
type Stats struct {
	Promotions     int `json:"promotions"`
	Handoffs       int `json:"handoffs"`
	DroppedShips   int `json:"droppedShips"`
	ShipsDelivered int `json:"shipsDelivered"`
	Suspicions     int `json:"suspicions"`
}

// Stats snapshots the counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Promotions:     c.promotions,
		Handoffs:       c.handoffs,
		DroppedShips:   c.droppedShips,
		ShipsDelivered: c.shipsDelivered,
		Suspicions:     c.tracker.Suspicions,
	}
}

// ShardView is one shard's row in the topology.
type ShardView struct {
	Shard     int    `json:"shard"`
	Fence     uint64 `json:"fence"`
	Primary   int    `json:"primary"` // -1 while leaderless
	Followers []int  `json:"followers"`
}

// NodeView is one member's row in the topology.
type NodeView struct {
	ID        int    `json:"id"`
	Addr      string `json:"addr,omitempty"`
	Leaving   bool   `json:"leaving,omitempty"`
	Suspected bool   `json:"suspected,omitempty"`
}

// TopologyView is the admin plane's cluster description; loadgen derives
// its routing table from it (ShardOf + Map[shard].Primary).
type TopologyView struct {
	Gen      uint64      `json:"gen"`
	Shards   int         `json:"shards"`
	Replicas int         `json:"replicas"`
	Map      []ShardView `json:"map"`
	Nodes    []NodeView  `json:"nodes"`
}

// Topology snapshots the control plane's current view.
func (c *Cluster) Topology() TopologyView {
	c.mu.Lock()
	defer c.mu.Unlock()
	tv := TopologyView{Gen: c.gen, Shards: c.cfg.Shards, Replicas: c.cfg.Replicas}
	for si, s := range c.shards {
		sv := ShardView{Shard: si, Fence: s.fence, Primary: int(s.primary), Followers: []int{}}
		for _, f := range s.followers {
			sv.Followers = append(sv.Followers, int(f))
		}
		tv.Map = append(tv.Map, sv)
	}
	for _, id := range c.memberIDs() {
		m := c.members[id]
		tv.Nodes = append(tv.Nodes, NodeView{
			ID: int(id), Addr: m.addr, Leaving: m.leaving, Suspected: m.suspected,
		})
	}
	return tv
}

func sortIDs(ids []cluster.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func containsID(ids []cluster.NodeID, id cluster.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func removeID(ids []cluster.NodeID, id cluster.NodeID) []cluster.NodeID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

func sortedNames(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
