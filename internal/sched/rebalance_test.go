package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datanet/internal/cluster"
)

func TestPlanRebalanceLevels(t *testing.T) {
	loads := map[cluster.NodeID]int64{0: 100, 1: 20, 2: 60, 3: 20}
	plan := PlanRebalance(loads)
	if plan.TotalBytes != 200 {
		t.Fatalf("TotalBytes = %d", plan.TotalBytes)
	}
	// avg = 50; surpluses: node0 +50, node2 +10 → 60 bytes must move.
	if plan.BytesMoved != 60 {
		t.Errorf("BytesMoved = %d, want 60", plan.BytesMoved)
	}
	if got := plan.Fraction(); got != 0.3 {
		t.Errorf("Fraction = %g, want 0.3", got)
	}
	// Applying the moves must level every node to the average.
	final := map[cluster.NodeID]int64{}
	for k, v := range loads {
		final[k] = v
	}
	for _, m := range plan.Moves {
		final[m.From] -= m.Bytes
		final[m.To] += m.Bytes
	}
	for id, v := range final {
		if v != 50 {
			t.Errorf("node %d ends at %d, want 50", id, v)
		}
	}
	if plan.NodesInvolved != 4 {
		t.Errorf("NodesInvolved = %d, want 4", plan.NodesInvolved)
	}
}

func TestPlanRebalanceAlreadyBalanced(t *testing.T) {
	plan := PlanRebalance(map[cluster.NodeID]int64{0: 10, 1: 10, 2: 10})
	if plan.BytesMoved != 0 || len(plan.Moves) != 0 || plan.NodesInvolved != 0 {
		t.Errorf("balanced plan = %+v", plan)
	}
}

func TestPlanRebalanceEmpty(t *testing.T) {
	if plan := PlanRebalance(nil); plan.Fraction() != 0 {
		t.Errorf("empty plan fraction = %g", plan.Fraction())
	}
}

func TestPlanRebalanceRemainder(t *testing.T) {
	// Total 10 over 3 nodes: targets 4,3,3 — no move should be lost to
	// rounding.
	plan := PlanRebalance(map[cluster.NodeID]int64{0: 10, 1: 0, 2: 0})
	final := map[cluster.NodeID]int64{0: 10, 1: 0, 2: 0}
	for _, m := range plan.Moves {
		final[m.From] -= m.Bytes
		final[m.To] += m.Bytes
	}
	var max, min int64 = 0, 1 << 62
	for _, v := range final {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if max-min > 1 {
		t.Errorf("post-plan spread %d–%d exceeds 1", min, max)
	}
}

// Property: the plan conserves bytes, only sends from surplus nodes, and
// moves exactly Σ max(0, load − target) bytes (volume-optimality).
func TestPlanRebalancePropertiesQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make(map[cluster.NodeID]int64, len(raw))
		var total int64
		for i, r := range raw {
			loads[cluster.NodeID(i)] = int64(r % 1000)
			total += int64(r % 1000)
		}
		plan := PlanRebalance(loads)
		if plan.TotalBytes != total {
			return false
		}
		final := make(map[cluster.NodeID]int64, len(loads))
		for k, v := range loads {
			final[k] = v
		}
		var moved int64
		for _, m := range plan.Moves {
			if m.Bytes <= 0 || m.From == m.To {
				return false
			}
			final[m.From] -= m.Bytes
			final[m.To] += m.Bytes
			moved += m.Bytes
		}
		if moved != plan.BytesMoved {
			return false
		}
		// Leveled within 1 byte and bytes conserved.
		var sum, max, min int64
		min = 1 << 62
		for _, v := range final {
			sum += v
			if v > max {
				max = v
			}
			if v < min {
				min = v
			}
		}
		return sum == total && max-min <= 1
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPlanAggregation(t *testing.T) {
	loads := map[cluster.NodeID]int64{0: 100, 1: 90, 2: 10, 3: 20, 4: 30}
	plan := PlanAggregation(loads, 2)
	if len(plan.Aggregators) != 2 {
		t.Fatalf("aggregators = %v", plan.Aggregators)
	}
	// The two most-loaded nodes are the sinks.
	if plan.Aggregators[0] != 0 || plan.Aggregators[1] != 1 {
		t.Errorf("aggregators = %v, want [0 1]", plan.Aggregators)
	}
	// Sinks keep their own data; only the other 60 bytes transfer.
	if plan.BytesTransferred != 60 {
		t.Errorf("BytesTransferred = %d, want 60", plan.BytesTransferred)
	}
	for id, sink := range plan.Sink {
		if id == 0 || id == 1 {
			if sink != id {
				t.Errorf("aggregator %d routed to %d", id, sink)
			}
		} else if sink != 0 && sink != 1 {
			t.Errorf("node %d routed to non-aggregator %d", id, sink)
		}
	}
	if got := plan.TransferFraction(); got != 0.24 {
		t.Errorf("TransferFraction = %g, want 0.24", got)
	}
}

func TestPlanAggregationDegenerate(t *testing.T) {
	if plan := PlanAggregation(nil, 3); plan.TransferFraction() != 0 {
		t.Error("empty plan should transfer nothing")
	}
	loads := map[cluster.NodeID]int64{0: 5, 1: 10}
	plan := PlanAggregation(loads, 0) // corrected to 1 sink
	if len(plan.Aggregators) != 1 || plan.Aggregators[0] != 1 {
		t.Errorf("aggregators = %v", plan.Aggregators)
	}
	all := PlanAggregation(loads, 99) // clamped to node count
	if len(all.Aggregators) != 2 || all.BytesTransferred != 0 {
		t.Errorf("all-sinks plan = %+v", all)
	}
}
