package sched

import (
	"errors"
	"fmt"

	"datanet/internal/cluster"
)

// This file implements graceful degradation for distribution-aware
// scheduling. DataNet's pickers consume per-block ElasticMap weights; when
// that meta-data is missing, truncated, or fails codec validation, the
// right behavior for a production scheduler is not to fail the job but to
// fall back to the locality baseline — the job still runs correctly, just
// without skew avoidance — and to say so in the run report.

// ErrBadWeights reports a weight vector the scheduler cannot trust.
var ErrBadWeights = errors.New("sched: invalid scheduling weights")

// ValidateWeights checks a per-block weight vector against the job's block
// count: it must be present, cover every block, and contain no negative
// entries. A failure means the meta-data does not describe this layout
// (stale encode, corrupt decode, wrong file) and weight-driven placement
// would be garbage-in/garbage-out.
func ValidateWeights(weights []int64, blocks int) error {
	if weights == nil {
		return fmt.Errorf("%w: missing", ErrBadWeights)
	}
	if len(weights) != blocks {
		return fmt.Errorf("%w: %d entries for %d blocks", ErrBadWeights, len(weights), blocks)
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("%w: negative weight %d at block %d", ErrBadWeights, w, i)
		}
	}
	return nil
}

// NewFallbackLocality returns a Factory producing the locality baseline
// tagged with the degradation reason, so Result.SchedulerName records that
// the job ran degraded rather than silently pretending the requested
// policy was in force.
func NewFallbackLocality(reason string) Factory {
	return func(tasks []Task, topo *cluster.Topology) Picker {
		return &fallbackPicker{Picker: NewLocalityPicker(tasks, topo), reason: reason}
	}
}

// fallbackPicker decorates the baseline with the degradation reason.
type fallbackPicker struct {
	Picker
	reason string
}

// Name implements Picker.
func (p *fallbackPicker) Name() string {
	return p.Picker.Name() + " (fallback: " + p.reason + ")"
}
