package sched

import (
	"sort"

	"datanet/internal/cluster"
)

// This file models the *reactive* alternative the paper compares against
// (§V-A.4): dynamically monitoring runtime status (SkewTune-style) and
// migrating filtered sub-dataset bytes between nodes after the selection
// map phase. DataNet avoids this migration entirely by foreseeing the
// imbalance; the comparator quantifies how much data the reactive approach
// must move (the paper measures >30% on the movie dataset).

// MigrationPlan describes the byte movements needed to balance per-node
// workloads post-hoc.
type MigrationPlan struct {
	// Moves lists individual transfers.
	Moves []Move
	// BytesMoved is the total migrated volume.
	BytesMoved int64
	// TotalBytes is the workload volume across all nodes.
	TotalBytes int64
	// NodesInvolved counts nodes that send or receive at least one byte.
	NodesInvolved int
}

// Move is one sender→receiver transfer.
type Move struct {
	From, To cluster.NodeID
	Bytes    int64
}

// Fraction returns BytesMoved / TotalBytes.
func (p MigrationPlan) Fraction() float64 {
	if p.TotalBytes == 0 {
		return 0
	}
	return float64(p.BytesMoved) / float64(p.TotalBytes)
}

// PlanRebalance computes the minimum-volume migration that levels every
// node to the average workload: overloaded nodes ship their excess to
// underloaded ones (greedy matching of largest surplus to largest deficit,
// which is volume-optimal since any leveling must move exactly
// Σ max(0, load_i − avg) bytes).
func PlanRebalance(loads map[cluster.NodeID]int64) MigrationPlan {
	type ent struct {
		node cluster.NodeID
		diff int64 // load − avg (rounded)
	}
	var total int64
	ids := make([]cluster.NodeID, 0, len(loads))
	for id, l := range loads {
		total += l
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := int64(len(ids))
	if n == 0 {
		return MigrationPlan{}
	}
	avg := total / n
	rem := total % n
	var surplus, deficit []ent
	for k, id := range ids {
		target := avg
		if int64(k) < rem {
			target++ // distribute the remainder deterministically
		}
		d := loads[id] - target
		if d > 0 {
			surplus = append(surplus, ent{id, d})
		} else if d < 0 {
			deficit = append(deficit, ent{id, -d})
		}
	}
	sort.Slice(surplus, func(i, j int) bool { return surplus[i].diff > surplus[j].diff })
	sort.Slice(deficit, func(i, j int) bool { return deficit[i].diff > deficit[j].diff })

	plan := MigrationPlan{TotalBytes: total}
	involved := make(map[cluster.NodeID]bool)
	si, di := 0, 0
	for si < len(surplus) && di < len(deficit) {
		amt := surplus[si].diff
		if deficit[di].diff < amt {
			amt = deficit[di].diff
		}
		plan.Moves = append(plan.Moves, Move{From: surplus[si].node, To: deficit[di].node, Bytes: amt})
		plan.BytesMoved += amt
		involved[surplus[si].node] = true
		involved[deficit[di].node] = true
		surplus[si].diff -= amt
		deficit[di].diff -= amt
		if surplus[si].diff == 0 {
			si++
		}
		if deficit[di].diff == 0 {
			di++
		}
	}
	plan.NodesInvolved = len(involved)
	return plan
}

// ---------------------------------------------------------------------------
// Future-work extension: minimizing aggregation transfer with ElasticMap.

// AggregationPlan assigns every node's filtered output to an aggregator so
// cross-node transfer is minimized (the paper defers "optimization of the
// sub-dataset transfer problem" to future work; ElasticMap makes the
// per-node volumes known in advance, enabling this plan).
type AggregationPlan struct {
	// Aggregators lists the chosen sink nodes.
	Aggregators []cluster.NodeID
	// Sink maps every node to its aggregator.
	Sink map[cluster.NodeID]cluster.NodeID
	// BytesTransferred is the total cross-node volume.
	BytesTransferred int64
	// TotalBytes is the total output volume.
	TotalBytes int64
}

// PlanAggregation picks the k nodes holding the most output as aggregators
// (their own bytes never cross the network) and assigns every other node
// to the aggregator with the least incoming volume so sinks stay balanced.
func PlanAggregation(loads map[cluster.NodeID]int64, k int) AggregationPlan {
	if k <= 0 {
		k = 1
	}
	ids := make([]cluster.NodeID, 0, len(loads))
	var total int64
	for id, l := range loads {
		ids = append(ids, id)
		total += l
	}
	sort.Slice(ids, func(i, j int) bool {
		if loads[ids[i]] != loads[ids[j]] {
			return loads[ids[i]] > loads[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	plan := AggregationPlan{
		Aggregators: append([]cluster.NodeID(nil), ids[:k]...),
		Sink:        make(map[cluster.NodeID]cluster.NodeID, len(ids)),
		TotalBytes:  total,
	}
	incoming := make(map[cluster.NodeID]int64, k)
	for _, a := range plan.Aggregators {
		plan.Sink[a] = a
		incoming[a] = loads[a] // local bytes count toward balance, not transfer
	}
	for _, id := range ids[k:] {
		var best cluster.NodeID
		first := true
		for _, a := range plan.Aggregators {
			if first || incoming[a] < incoming[best] || (incoming[a] == incoming[best] && a < best) {
				best = a
				first = false
			}
		}
		plan.Sink[id] = best
		incoming[best] += loads[id]
		plan.BytesTransferred += loads[id]
	}
	return plan
}

// TransferFraction returns BytesTransferred / TotalBytes.
func (p AggregationPlan) TransferFraction() float64 {
	if p.TotalBytes == 0 {
		return 0
	}
	return float64(p.BytesTransferred) / float64(p.TotalBytes)
}
