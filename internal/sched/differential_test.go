package sched

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"datanet/internal/cluster"
	"datanet/internal/graph"
	"datanet/internal/hdfs"
)

// The differential property: on any cluster/block instance, Algorithm 1's
// planned max node load
//
//   - never beats the universal lower bound max(⌈total/m⌉, w_max) — no
//     assignment can;
//   - is within a bounded ratio of the max-flow optimum (the paper's
//     offline Ford–Fulkerson assignment);
//   - and, when the plan used no off-replica placement (no line-12 assist
//     fired), is ≥ the flow optimum minus one block's weight — the flow
//     solver rounds its fractional solution, so w_max is exactly its
//     documented slack. Off-replica plans are exempt from this direction:
//     the assist escapes the locality constraint the flow optimum is
//     computed under, so Algorithm 1 may legitimately beat it.
//
// Failures shrink the instance (drop blocks, drop nodes, halve weights)
// before reporting, so the log shows a minimal counterexample.

// diffInstance is one random cluster/block problem.
type diffInstance struct {
	nodes     int
	weights   []int64
	locations [][]int
}

func (in *diffInstance) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d blocks=%d\n", in.nodes, len(in.weights))
	for j := range in.weights {
		fmt.Fprintf(&sb, "  block %d: weight=%d replicas=%v\n", j, in.weights[j], in.locations[j])
	}
	return sb.String()
}

// randomInstance draws a skewed instance: Zipf-flavored weights (many
// light blocks, few heavy), some zero-weight blocks, 1–3 replicas spread
// at random.
func randomInstance(rng *rand.Rand) *diffInstance {
	m := 2 + rng.Intn(11)   // 2..12 nodes
	nb := m + rng.Intn(40)  // m..m+39 blocks
	repl := 1 + rng.Intn(3) // 1..3 replicas
	in := &diffInstance{nodes: m}
	for j := 0; j < nb; j++ {
		var w int64
		switch rng.Intn(4) {
		case 0: // zero-weight block (sub-dataset absent)
			w = 0
		case 1: // heavy head
			w = 500 + rng.Int63n(2000)
		default: // light tail
			w = rng.Int63n(120)
		}
		locs := rng.Perm(m)[:min(repl, m)]
		in.weights = append(in.weights, w)
		in.locations = append(in.locations, locs)
	}
	return in
}

// evaluate runs both sides of the differential on an instance.
type diffResult struct {
	algoMax    int64
	flowMax    int64
	lowerBound int64
	wmax       int64
	usedAssist bool
}

func evaluate(t *testing.T, in *diffInstance) diffResult {
	t.Helper()
	topo, err := cluster.NewHomogeneous(in.nodes, 1)
	if err != nil {
		t.Fatalf("bad instance (%d nodes): %v", in.nodes, err)
	}
	tasks := make([]Task, len(in.weights))
	for j, w := range in.weights {
		locs := make([]cluster.NodeID, len(in.locations[j]))
		for k, n := range in.locations[j] {
			locs[k] = cluster.NodeID(n)
		}
		tasks[j] = Task{Block: hdfs.BlockID(j), Index: j, Weight: w, Bytes: w, Locations: locs}
	}
	p := NewDataNetPicker(tasks, topo).(*DataNetPicker)
	var res diffResult
	for _, w := range p.Workloads() {
		if w > res.algoMax {
			res.algoMax = w
		}
	}
	for _, rule := range p.ruleByIndex {
		if rule == "algo1.line12-assist" || rule == "algo1.no-local-replica" {
			res.usedAssist = true
		}
	}

	g := graph.NewBipartite(in.nodes, in.weights, in.locations)
	res.flowMax = graph.MaxLoad(g, graph.BalancedAssignment(g))

	var total int64
	for _, w := range in.weights {
		total += w
		if w > res.wmax {
			res.wmax = w
		}
	}
	res.lowerBound = (total + int64(in.nodes) - 1) / int64(in.nodes)
	if res.wmax > res.lowerBound {
		res.lowerBound = res.wmax
	}
	return res
}

// propertyViolation returns "" when the instance satisfies the property.
func propertyViolation(t *testing.T, in *diffInstance) string {
	r := evaluate(t, in)
	if r.flowMax < r.lowerBound {
		return fmt.Sprintf("flow optimum %d beats the universal lower bound %d", r.flowMax, r.lowerBound)
	}
	if r.algoMax < r.lowerBound {
		return fmt.Sprintf("algorithm 1 max load %d beats the universal lower bound %d", r.algoMax, r.lowerBound)
	}
	if !r.usedAssist && r.algoMax+r.wmax < r.flowMax {
		return fmt.Sprintf("locality-respecting algorithm 1 max load %d under flow optimum %d − w_max %d", r.algoMax, r.flowMax, r.wmax)
	}
	if bound := 2*r.flowMax + r.wmax; r.algoMax > bound {
		return fmt.Sprintf("algorithm 1 max load %d exceeds ratio bound 2·%d + %d", r.algoMax, r.flowMax, r.wmax)
	}
	return ""
}

// shrink greedily minimizes a failing instance while it keeps failing.
func shrink(t *testing.T, in *diffInstance) *diffInstance {
	fails := func(c *diffInstance) bool {
		return len(c.weights) > 0 && c.nodes >= 2 && propertyViolation(t, c) != ""
	}
	for progress := true; progress; {
		progress = false
		// Drop one block at a time.
		for j := 0; j < len(in.weights); j++ {
			c := &diffInstance{
				nodes:     in.nodes,
				weights:   append(append([]int64{}, in.weights[:j]...), in.weights[j+1:]...),
				locations: append(append([][]int{}, in.locations[:j]...), in.locations[j+1:]...),
			}
			if fails(c) {
				in, progress = c, true
				j--
			}
		}
		// Drop the last node, folding its replicas onto the rest.
		if in.nodes > 2 {
			c := &diffInstance{nodes: in.nodes - 1, weights: append([]int64{}, in.weights...)}
			for _, locs := range in.locations {
				seen := map[int]bool{}
				var folded []int
				for _, n := range locs {
					n %= c.nodes
					if !seen[n] {
						seen[n] = true
						folded = append(folded, n)
					}
				}
				c.locations = append(c.locations, folded)
			}
			if fails(c) {
				in, progress = c, true
			}
		}
		// Halve weights.
		for j := 0; j < len(in.weights); j++ {
			if in.weights[j] < 2 {
				continue
			}
			c := &diffInstance{nodes: in.nodes, weights: append([]int64{}, in.weights...), locations: in.locations}
			c.weights[j] /= 2
			if fails(c) {
				in, progress = c, true
			}
		}
	}
	return in
}

// TestAlgorithm1VsMaxFlowDifferential sweeps seeded random instances
// through both schedulers and checks the bracketing property.
func TestAlgorithm1VsMaxFlowDifferential(t *testing.T) {
	const instances = 200
	rng := rand.New(rand.NewSource(20160523)) // the paper's conference date
	for i := 0; i < instances; i++ {
		in := randomInstance(rng)
		if msg := propertyViolation(t, in); msg != "" {
			min := shrink(t, in)
			t.Fatalf("instance %d: %s\nshrunken counterexample:\n%s(still fails with: %s)",
				i, msg, min, propertyViolation(t, min))
		}
	}
}

// TestDifferentialTable pins known instances — corner cases the random
// sweep may not draw — in table form.
func TestDifferentialTable(t *testing.T) {
	cases := []struct {
		name string
		in   diffInstance
	}{
		{"single block", diffInstance{nodes: 3, weights: []int64{700}, locations: [][]int{{1}}}},
		{"all zero weights", diffInstance{nodes: 4, weights: []int64{0, 0, 0, 0, 0},
			locations: [][]int{{0}, {1}, {2}, {3}, {0, 1}}}},
		{"uniform spread", diffInstance{nodes: 2, weights: []int64{10, 10, 10, 10},
			locations: [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}}}},
		{"one hot node", diffInstance{nodes: 2, weights: []int64{10, 10, 10, 10, 10, 10},
			locations: [][]int{{0}, {0}, {0}, {0}, {0}, {0}}}},
		{"heavy head light tail", diffInstance{nodes: 3, weights: []int64{900, 1, 1, 1, 1, 1, 1},
			locations: [][]int{{0, 1}, {0}, {0}, {0}, {1}, {2}, {2}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if msg := propertyViolation(t, &tc.in); msg != "" {
				t.Fatalf("%s\n%s", msg, &tc.in)
			}
		})
	}
}

// TestShrinkerMinimizes pins the worked counterexample that motivates the
// assist exemption in the property: with every replica on one node,
// Algorithm 1's line-12 assist goes off-replica and genuinely beats the
// locality-constrained flow optimum. If this ever stops holding, the
// exemption in propertyViolation should be revisited.
func TestShrinkerMinimizes(t *testing.T) {
	// "one hot node" violates the *strict* (assist-blind) dominance
	// direction: algorithm 1's assist beats the locality-bound optimum.
	in := &diffInstance{nodes: 2, weights: []int64{10, 10, 10, 10, 10, 10},
		locations: [][]int{{0}, {0}, {0}, {0}, {0}, {0}}}
	r := evaluate(t, in)
	if !r.usedAssist {
		t.Skip("instance no longer triggers the assist; shrinker exercise moot")
	}
	if r.algoMax >= r.flowMax {
		t.Fatalf("expected assist to beat the flow optimum: algo %d, flow %d", r.algoMax, r.flowMax)
	}
}
