package sched

import (
	"testing"

	"datanet/internal/cluster"
)

func TestDelayedLocalityDeclinesThenServes(t *testing.T) {
	topo := cluster.MustHomogeneous(2, 1)
	tasks := []Task{
		{Block: 0, Index: 0, Locations: []cluster.NodeID{0}},
		{Block: 1, Index: 1, Locations: []cluster.NodeID{0}},
	}
	p := NewDelayedLocalityPicker(2)(tasks, topo)
	if p.Name() != "hadoop-delay" {
		t.Errorf("Name = %q", p.Name())
	}
	// Node 1 has no locals: it must decline exactly `delay` times, then
	// accept remote work.
	for i := 0; i < 2; i++ {
		if _, ok := p.Next(1); ok {
			t.Fatalf("request %d should have been declined", i)
		}
	}
	if task, ok := p.Next(1); !ok || task.Block != 0 {
		t.Fatalf("after the delay, node 1 should get remote block 0; got %v, %v", task, ok)
	}
	// Node 0 is served its local block immediately.
	if task, ok := p.Next(0); !ok || task.Block != 1 {
		t.Fatalf("node 0 local pick = %v, %v", task, ok)
	}
	if p.Remaining() != 0 {
		t.Errorf("Remaining = %d", p.Remaining())
	}
	if _, ok := p.Next(0); ok {
		t.Error("exhausted picker served a task")
	}
}

func TestDelayedLocalityImprovesLocality(t *testing.T) {
	topo := cluster.MustHomogeneous(8, 2)
	tasks := mkTasks(64, 8, []int64{100}, 21)
	countLocal := func(f Factory) (local, remote int) {
		p := f(tasks, topo)
		for i := 0; p.Remaining() > 0; i++ {
			node := cluster.NodeID(i % 8)
			task, ok := p.Next(node)
			if !ok {
				continue
			}
			if isLocal(task, node) {
				local++
			} else {
				remote++
			}
		}
		return local, remote
	}
	_, remotePlain := countLocal(NewLocalityPicker)
	_, remoteDelay := countLocal(NewDelayedLocalityPicker(4))
	if remoteDelay > remotePlain {
		t.Errorf("delay scheduling increased remote tasks: %d vs %d", remoteDelay, remotePlain)
	}
}

func TestDelayedLocalityDrainsEverything(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	tasks := mkTasks(30, 4, []int64{7, 0, 13}, 22)
	p := NewDelayedLocalityPicker(3)(tasks, topo)
	served := 0
	for i := 0; served < len(tasks); i++ {
		if i > 10000 {
			t.Fatal("picker did not drain")
		}
		if _, ok := p.Next(cluster.NodeID(i % 4)); ok {
			served++
		}
	}
	if p.Remaining() != 0 {
		t.Errorf("Remaining = %d after drain", p.Remaining())
	}
}

// Stealing prefers the lightest remaining tasks and tasks local to the
// thief, so a precomputed capacity-aware plan survives execution.
func TestDataNetStealLightestFirst(t *testing.T) {
	topo := cluster.MustHomogeneous(3, 1)
	tasks := []Task{
		{Block: 0, Index: 0, Weight: 1000, Locations: []cluster.NodeID{0}},
		{Block: 1, Index: 1, Weight: 500, Locations: []cluster.NodeID{0}},
		{Block: 2, Index: 2, Weight: 0, Locations: []cluster.NodeID{0}},
		{Block: 3, Index: 3, Weight: 0, Locations: []cluster.NodeID{0}},
	}
	p := NewDataNetPicker(tasks, topo)
	// Nodes 1 and 2 hold nothing: their steals must take the zero-weight
	// tasks first, leaving the weighted plan on node 0 intact.
	t1, ok := p.Next(1)
	if !ok || t1.Weight != 0 {
		t.Fatalf("first steal = %+v", t1)
	}
	t2, ok := p.Next(2)
	if !ok || t2.Weight != 0 {
		t.Fatalf("second steal = %+v", t2)
	}
	// Node 0 still serves its heavy tasks in descending order.
	h1, _ := p.Next(0)
	h2, _ := p.Next(0)
	if h1.Weight != 1000 || h2.Weight != 500 {
		t.Errorf("plan eroded: %d, %d", h1.Weight, h2.Weight)
	}
}
