// Package sched implements task scheduling for sub-dataset analysis:
//
//   - the Hadoop block-locality baseline (the paper's "without DataNet");
//   - DataNet's distribution-aware Algorithm 1 (the paper's "with
//     DataNet"): each task request is answered with the block whose
//     sub-dataset weight moves the requesting node's workload closest to
//     the cluster average W̄, preferring local replicas;
//   - an offline max-flow optimal assignment (paper §IV-B, via
//     internal/graph);
//   - ablation pickers (LPT greedy, random);
//   - a dynamic-rebalance comparator modeling SkewTune-style runtime
//     migration, used for the §V-A.4 ">30% of data migrated" analysis;
//   - a min-transfer aggregation planner (the paper's stated future work).
//
// All pickers implement the pull protocol Hadoop task trackers use: a node
// with a free slot requests the next task.
package sched

import (
	"math/rand"
	"sort"

	"datanet/internal/cluster"
	"datanet/internal/graph"
	"datanet/internal/hdfs"
)

// Task is one map task: processing one block for the target sub-dataset.
type Task struct {
	// Block identifies the HDFS block.
	Block hdfs.BlockID
	// Index is the task's position in the job (block order).
	Index int
	// Weight is the task's sub-dataset workload |b ∩ s| in bytes, as
	// estimated by ElasticMap (or ground truth in oracle runs).
	Weight int64
	// Bytes is the full block size (scan cost is paid on the whole block).
	Bytes int64
	// Locations lists replica-holding nodes.
	Locations []cluster.NodeID
}

// Picker hands out tasks under the pull protocol. Implementations are not
// safe for concurrent use; the engine serializes requests in event order.
type Picker interface {
	// Name identifies the scheduling policy.
	Name() string
	// Next removes and returns a task for the requesting node. ok is false
	// when no tasks remain.
	Next(node cluster.NodeID) (t Task, ok bool)
	// Remaining reports how many tasks are still unassigned.
	Remaining() int
}

// Factory builds a fresh Picker for a job.
type Factory func(tasks []Task, topo *cluster.Topology) Picker

// isLocal reports whether node holds a replica for t.
func isLocal(t Task, node cluster.NodeID) bool {
	for _, n := range t.Locations {
		if n == node {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Hadoop locality baseline.

// LocalityPicker models Hadoop's default block-locality-driven scheduling:
// a requesting node receives its first unprocessed local block (FIFO in
// block order), falling back to the first remaining block when it has no
// local work left. Sub-dataset weights are ignored entirely — this is the
// paper's "without DataNet" configuration.
type LocalityPicker struct {
	tasks    []Task
	taken    []bool
	byNode   map[cluster.NodeID][]int
	remain   int
	nextRem  int
	lastRule string
}

// NewLocalityPicker constructs the baseline picker.
func NewLocalityPicker(tasks []Task, _ *cluster.Topology) Picker {
	p := &LocalityPicker{
		tasks:  tasks,
		taken:  make([]bool, len(tasks)),
		byNode: make(map[cluster.NodeID][]int),
		remain: len(tasks),
	}
	for i, t := range tasks {
		for _, n := range t.Locations {
			p.byNode[n] = append(p.byNode[n], i)
		}
	}
	return p
}

// Name implements Picker.
func (p *LocalityPicker) Name() string { return "hadoop-locality" }

// Remaining implements Picker.
func (p *LocalityPicker) Remaining() int { return p.remain }

// Next implements Picker.
func (p *LocalityPicker) Next(node cluster.NodeID) (Task, bool) {
	if p.remain == 0 {
		return Task{}, false
	}
	// Local FIFO.
	queue := p.byNode[node]
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if !p.taken[i] {
			p.byNode[node] = queue
			p.lastRule = "locality.local-fifo"
			return p.take(i), true
		}
	}
	p.byNode[node] = queue
	// Remote FIFO.
	for p.nextRem < len(p.tasks) && p.taken[p.nextRem] {
		p.nextRem++
	}
	if p.nextRem < len(p.tasks) {
		p.lastRule = "locality.remote-fifo"
		return p.take(p.nextRem), true
	}
	return Task{}, false
}

func (p *LocalityPicker) take(i int) Task {
	p.taken[i] = true
	p.remain--
	return p.tasks[i]
}

// DelayedLocalityPicker refines the baseline with Hadoop's delay
// scheduling: a node with no local work declines up to Delay consecutive
// requests (hoping a local block frees up as other nodes drain the queue)
// before accepting a remote block. It raises data-locality at the cost of
// idle slots — the real Hadoop trade-off — and serves as a stronger
// baseline ablation.
type DelayedLocalityPicker struct {
	inner    *LocalityPicker
	delay    int
	waiting  map[cluster.NodeID]int
	lastRule string
}

// NewDelayedLocalityPicker returns a Factory with the given maximum
// number of declined requests per node.
func NewDelayedLocalityPicker(delay int) Factory {
	return func(tasks []Task, topo *cluster.Topology) Picker {
		return &DelayedLocalityPicker{
			inner:   NewLocalityPicker(tasks, topo).(*LocalityPicker),
			delay:   delay,
			waiting: make(map[cluster.NodeID]int),
		}
	}
}

// Name implements Picker.
func (p *DelayedLocalityPicker) Name() string { return "hadoop-delay" }

// Remaining implements Picker.
func (p *DelayedLocalityPicker) Remaining() int { return p.inner.Remaining() }

// Next implements Picker. The ok=false return while waiting is
// indistinguishable from exhaustion to a naive caller, so the engine's
// retry loop (slots keep requesting until Remaining()==0) provides the
// "ask again later" semantics.
func (p *DelayedLocalityPicker) Next(node cluster.NodeID) (Task, bool) {
	if p.inner.remain == 0 {
		return Task{}, false
	}
	// Serve a local block if one exists (also resets the wait counter).
	queue := p.inner.byNode[node]
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if !p.inner.taken[i] {
			p.inner.byNode[node] = queue
			p.waiting[node] = 0
			p.lastRule = "delay.local-fifo"
			return p.inner.take(i), true
		}
	}
	p.inner.byNode[node] = queue
	if p.waiting[node] < p.delay {
		p.waiting[node]++
		return Task{}, false // decline; the slot will ask again
	}
	p.waiting[node] = 0
	p.lastRule = "delay.remote-after-wait"
	return p.inner.Next(node) // give up waiting: remote FIFO
}

// ---------------------------------------------------------------------------
// DataNet Algorithm 1.

// DataNetPicker implements the paper's Algorithm 1: distribution-aware,
// workload-balanced assignment of block tasks using the ElasticMap
// weights. Because DataNet's defining property is that the sub-dataset
// distribution is known *before* the job launches (§IV: "we could identify
// the imbalanced distribution of sub-datasets before launching the actual
// analysis tasks"), the picker materializes the balanced assignment up
// front and serves it through the pull protocol:
//
//   - tasks are placed in descending weight order, each on the
//     replica-holding node whose projected workload stays lowest (the
//     assignment Algorithm 1's argmin |W_i + |b_x ∩ s| − W̄| objective
//     converges to; evaluating that argmin one myopic pull at a time
//     instead would let zero-weight blocks starve under-target nodes and
//     strand heavy blocks on whoever requests last);
//   - a task is assigned off-replica (a remote read) only when every
//     replica holder is already far ahead of the least-loaded node —
//     Algorithm 1's line-12 fallback, rate-limited because remote scans
//     cost network time;
//   - zero-weight blocks are spread by task count so per-task overheads
//     stay balanced too;
//   - at execution time a node that drains its queue steals the lightest
//     task from the heaviest remaining queue, keeping the pull protocol
//     deadlock-free and self-correcting.
type DataNetPicker struct {
	queues   map[cluster.NodeID][]Task
	workload map[cluster.NodeID]int64
	remain   int
	name     string
	// ruleByIndex records which planning rule placed each task (by
	// task.Index), so Explain can report it when the queue is served.
	ruleByIndex map[int]string
	lastRule    string
}

// assistFactor controls off-replica assignment: a task may go remote when
// the best local holder is more than assistFactor×weight ahead of the
// globally least-loaded node.
const assistFactor = 2.0

// NewDataNetPicker constructs Algorithm 1 with a uniform workload target
// W̄ (homogeneous clusters, as in the paper's evaluation).
func NewDataNetPicker(tasks []Task, topo *cluster.Topology) Picker {
	return newDataNet(tasks, topo, false)
}

// NewCapacityAwarePicker is Algorithm 1 with per-node targets proportional
// to CPU capacity ("according to the computing capability of computational
// nodes, we can calculate the amount of sub-datasets to be assigned to
// each node", §IV-B) — the heterogeneous-cluster variant.
func NewCapacityAwarePicker(tasks []Task, topo *cluster.Topology) Picker {
	return newDataNet(tasks, topo, true)
}

func newDataNet(tasks []Task, topo *cluster.Topology, capacityAware bool) Picker {
	m := topo.N()
	name := "datanet"
	// Per-node capacity shares normalize projected loads on heterogeneous
	// clusters ("according to the computing capability of computational
	// nodes", §IV-B).
	share := make([]float64, m)
	for i, id := range topo.IDs() {
		if capacityAware {
			share[i] = topo.CapacityShare(id)
			name = "datanet-capacity"
		} else {
			share[i] = 1 / float64(m)
		}
		if share[i] <= 0 {
			share[i] = 1 / float64(m)
		}
		_ = id
	}

	// Place tasks in descending weight order (stable, so equal-weight
	// blocks keep file order).
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Weight > tasks[order[b]].Weight
	})

	load := make([]float64, m) // normalized: bytes / share
	count := make([]int, m)
	rawLoad := make([]int64, m)
	queues := make(map[cluster.NodeID][]Task, m)
	rules := make(map[int]string, len(tasks))

	better := func(a, b int) bool { // is node a a better placement than b?
		if b == -1 {
			return true
		}
		if load[a] != load[b] {
			return load[a] < load[b]
		}
		if count[a] != count[b] {
			return count[a] < count[b]
		}
		return a < b
	}

	for _, ti := range order {
		t := tasks[ti]
		bestLocal := -1
		for _, loc := range t.Locations {
			if int(loc) >= 0 && int(loc) < m && better(int(loc), bestLocal) {
				bestLocal = int(loc)
			}
		}
		gmin := 0
		for i := 1; i < m; i++ {
			if better(i, gmin) {
				gmin = i
			}
		}
		pick := bestLocal
		rule := "algo1.argmin-local"
		if bestLocal == -1 {
			pick = gmin
			rule = "algo1.no-local-replica"
		} else if t.Weight > 0 {
			// Off-replica assist (line-12 fallback): only when every local
			// holder is far ahead of the least-loaded node. Loads are in
			// normalized (capacity-adjusted) bytes, so the task's weight is
			// normalized at the receiving node's scale for the comparison.
			wNorm := float64(t.Weight) / (share[gmin] * float64(m))
			if load[bestLocal]-load[gmin] > assistFactor*wNorm {
				pick = gmin
				rule = "algo1.line12-assist"
			}
		}
		rules[t.Index] = rule
		load[pick] += float64(t.Weight) / (share[pick] * float64(m))
		count[pick]++
		rawLoad[pick] += t.Weight
		id := cluster.NodeID(pick)
		queues[id] = append(queues[id], t)
	}

	p := &DataNetPicker{
		queues:      queues,
		workload:    make(map[cluster.NodeID]int64, m),
		remain:      len(tasks),
		name:        name,
		ruleByIndex: rules,
	}
	for i, w := range rawLoad {
		p.workload[cluster.NodeID(i)] = w
	}
	return p
}

// Name implements Picker.
func (p *DataNetPicker) Name() string { return p.name }

// Remaining implements Picker.
func (p *DataNetPicker) Remaining() int { return p.remain }

// Next implements Picker: serve the node's precomputed queue
// heaviest-first; when the queue is empty, steal so early finishers absorb
// slack instead of idling. Stealing takes the *globally lightest*
// remaining task (preferring one whose replica the thief already holds) —
// zero-weight blocks migrate freely while the weight plan, including
// capacity-aware targets on heterogeneous clusters, stays intact; a heavy
// task only moves when nothing lighter remains anywhere.
func (p *DataNetPicker) Next(node cluster.NodeID) (Task, bool) {
	if p.remain == 0 {
		return Task{}, false
	}
	if q := p.queues[node]; len(q) > 0 {
		t := q[0]
		p.queues[node] = q[1:]
		p.remain--
		p.lastRule = p.ruleByIndex[t.Index]
		return t, true
	}
	// Steal. Queues are sorted heaviest-first, so each queue's candidate
	// is its last element; among local-to-thief candidates (scanning each
	// queue tail-first) pick the lightest, falling back to the lightest
	// candidate overall. Ties break toward the lower victim id.
	pick := func(localOnly bool) (cluster.NodeID, int) {
		var victim cluster.NodeID
		idx := -1
		var bestW int64 = -1
		for id, q := range p.queues {
			if len(q) == 0 {
				continue
			}
			cand := -1
			if localOnly {
				for i := len(q) - 1; i >= 0; i-- {
					if isLocal(q[i], node) {
						cand = i
						break
					}
				}
			} else {
				cand = len(q) - 1
			}
			if cand == -1 {
				continue
			}
			w := q[cand].Weight
			if idx == -1 || w < bestW || (w == bestW && id < victim) {
				victim, idx, bestW = id, cand, w
			}
		}
		return victim, idx
	}
	victim, idx := pick(true)
	p.lastRule = "algo1.steal-local"
	if idx == -1 {
		victim, idx = pick(false)
		p.lastRule = "algo1.steal-global"
	}
	if idx == -1 {
		return Task{}, false
	}
	q := p.queues[victim]
	t := q[idx]
	p.queues[victim] = append(q[:idx:idx], q[idx+1:]...)
	p.remain--
	p.workload[victim] -= t.Weight
	p.workload[node] += t.Weight
	return t, true
}

// Workloads exposes the per-node accumulated weights (after a run).
func (p *DataNetPicker) Workloads() map[cluster.NodeID]int64 {
	out := make(map[cluster.NodeID]int64, len(p.workload))
	for k, v := range p.workload {
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// Ablation pickers.

// LPTPicker is a longest-processing-time greedy: a requesting node takes
// its heaviest unprocessed local block (else the heaviest remaining).
// Classic makespan heuristic; an ablation contrast for Algorithm 1.
type LPTPicker struct {
	tasks    []Task
	taken    []bool
	byNode   map[cluster.NodeID][]int
	order    []int // all tasks, heaviest first
	remain   int
	lastRule string
}

// NewLPTPicker constructs the LPT picker.
func NewLPTPicker(tasks []Task, _ *cluster.Topology) Picker {
	p := &LPTPicker{
		tasks:  tasks,
		taken:  make([]bool, len(tasks)),
		byNode: make(map[cluster.NodeID][]int),
		remain: len(tasks),
	}
	for i, t := range tasks {
		for _, n := range t.Locations {
			p.byNode[n] = append(p.byNode[n], i)
		}
	}
	p.order = make([]int, len(tasks))
	for i := range p.order {
		p.order[i] = i
	}
	sort.SliceStable(p.order, func(a, b int) bool {
		return tasks[p.order[a]].Weight > tasks[p.order[b]].Weight
	})
	for n := range p.byNode {
		idx := p.byNode[n]
		sort.SliceStable(idx, func(a, b int) bool {
			return tasks[idx[a]].Weight > tasks[idx[b]].Weight
		})
	}
	return p
}

// Name implements Picker.
func (p *LPTPicker) Name() string { return "lpt-greedy" }

// Remaining implements Picker.
func (p *LPTPicker) Remaining() int { return p.remain }

// Next implements Picker.
func (p *LPTPicker) Next(node cluster.NodeID) (Task, bool) {
	if p.remain == 0 {
		return Task{}, false
	}
	for _, i := range p.byNode[node] {
		if !p.taken[i] {
			p.lastRule = "lpt.local"
			return p.take(i), true
		}
	}
	for _, i := range p.order {
		if !p.taken[i] {
			p.lastRule = "lpt.remote"
			return p.take(i), true
		}
	}
	return Task{}, false
}

func (p *LPTPicker) take(i int) Task {
	p.taken[i] = true
	p.remain--
	return p.tasks[i]
}

// RandomPicker assigns a uniformly random remaining local task (else a
// random remaining task). It isolates how much of the imbalance is due to
// FIFO order versus locality itself.
type RandomPicker struct {
	tasks    []Task
	taken    []bool
	byNode   map[cluster.NodeID][]int
	rng      *rand.Rand
	remain   int
	lastRule string
}

// NewRandomPicker returns a Factory seeded for reproducibility.
func NewRandomPicker(seed int64) Factory {
	return func(tasks []Task, _ *cluster.Topology) Picker {
		p := &RandomPicker{
			tasks:  tasks,
			taken:  make([]bool, len(tasks)),
			byNode: make(map[cluster.NodeID][]int),
			rng:    rand.New(rand.NewSource(seed)),
			remain: len(tasks),
		}
		for i, t := range tasks {
			for _, n := range t.Locations {
				p.byNode[n] = append(p.byNode[n], i)
			}
		}
		return p
	}
}

// Name implements Picker.
func (p *RandomPicker) Name() string { return "random-local" }

// Remaining implements Picker.
func (p *RandomPicker) Remaining() int { return p.remain }

// Next implements Picker.
func (p *RandomPicker) Next(node cluster.NodeID) (Task, bool) {
	if p.remain == 0 {
		return Task{}, false
	}
	var cand []int
	for _, i := range p.byNode[node] {
		if !p.taken[i] {
			cand = append(cand, i)
		}
	}
	p.lastRule = "random.local"
	if len(cand) == 0 {
		for i := range p.tasks {
			if !p.taken[i] {
				cand = append(cand, i)
			}
		}
		p.lastRule = "random.remote"
	}
	if len(cand) == 0 {
		return Task{}, false
	}
	i := cand[p.rng.Intn(len(cand))]
	p.taken[i] = true
	p.remain--
	return p.tasks[i], true
}

// ---------------------------------------------------------------------------
// Offline max-flow assignment wrapped in the pull interface.

// StaticPicker serves a precomputed node→tasks assignment; requests from a
// node drain its own queue first, then steal from the most-loaded queue.
type StaticPicker struct {
	name     string
	queues   map[cluster.NodeID][]Task
	remain   int
	lastRule string
}

// NewFlowPicker computes the max-flow balanced assignment (paper §IV-B,
// Ford–Fulkerson) and serves it statically.
func NewFlowPicker(tasks []Task, topo *cluster.Topology) Picker {
	weights := make([]int64, len(tasks))
	locs := make([][]int, len(tasks))
	for i, t := range tasks {
		weights[i] = t.Weight
		locs[i] = make([]int, len(t.Locations))
		for k, n := range t.Locations {
			locs[i][k] = int(n)
		}
	}
	g := graph.NewBipartite(topo.N(), weights, locs)
	assign := graph.BalancedAssignment(g)
	queues := make(map[cluster.NodeID][]Task, len(assign))
	for n, idxs := range assign {
		for _, i := range idxs {
			queues[cluster.NodeID(n)] = append(queues[cluster.NodeID(n)], tasks[i])
		}
	}
	return &StaticPicker{name: "maxflow-optimal", queues: queues, remain: len(tasks)}
}

// Name implements Picker.
func (p *StaticPicker) Name() string { return p.name }

// Remaining implements Picker.
func (p *StaticPicker) Remaining() int { return p.remain }

// Next implements Picker.
func (p *StaticPicker) Next(node cluster.NodeID) (Task, bool) {
	if p.remain == 0 {
		return Task{}, false
	}
	if q := p.queues[node]; len(q) > 0 {
		t := q[0]
		p.queues[node] = q[1:]
		p.remain--
		p.lastRule = "maxflow.plan"
		return t, true
	}
	// Work stealing from the largest remaining queue keeps the simulation
	// deadlock-free when a node finishes early.
	var victim cluster.NodeID
	best := -1
	for n, q := range p.queues {
		if len(q) > best {
			best, victim = len(q), n
		} else if len(q) == best && n < victim {
			victim = n
		}
	}
	if best <= 0 {
		return Task{}, false
	}
	q := p.queues[victim]
	t := q[len(q)-1]
	p.queues[victim] = q[:len(q)-1]
	p.remain--
	p.lastRule = "maxflow.steal"
	return t, true
}
