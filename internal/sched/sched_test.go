package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datanet/internal/cluster"
	"datanet/internal/hdfs"
)

// mkTasks builds a reproducible task set: nBlocks tasks with the given
// weights (cycled) and 3 random replica locations each.
func mkTasks(nBlocks, nNodes int, weights []int64, seed int64) []Task {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]Task, nBlocks)
	for i := range tasks {
		perm := rng.Perm(nNodes)
		locs := make([]cluster.NodeID, 3)
		for k := 0; k < 3; k++ {
			locs[k] = cluster.NodeID(perm[k])
		}
		w := int64(0)
		if len(weights) > 0 {
			w = weights[i%len(weights)]
		}
		tasks[i] = Task{
			Block:     hdfs.BlockID(i),
			Index:     i,
			Weight:    w,
			Bytes:     1 << 18,
			Locations: locs,
		}
	}
	return tasks
}

// drain pulls every task via round-robin requests, returning per-node
// served weights and the number of tasks served.
func drain(p Picker, nNodes int) (map[cluster.NodeID]int64, map[cluster.NodeID]int, int) {
	loads := make(map[cluster.NodeID]int64)
	counts := make(map[cluster.NodeID]int)
	served := 0
	for i := 0; ; i++ {
		node := cluster.NodeID(i % nNodes)
		t, ok := p.Next(node)
		if !ok {
			if p.Remaining() == 0 {
				break
			}
			continue
		}
		loads[node] += t.Weight
		counts[node]++
		served++
		if served > 10000 {
			panic("drain runaway")
		}
	}
	return loads, counts, served
}

// allFactories enumerates every picker under test.
func allFactories() map[string]Factory {
	return map[string]Factory{
		"locality": NewLocalityPicker,
		"datanet":  NewDataNetPicker,
		"capacity": NewCapacityAwarePicker,
		"flow":     NewFlowPicker,
		"lpt":      NewLPTPicker,
		"random":   NewRandomPicker(99),
	}
}

// Every picker must serve every task exactly once, under any request
// pattern.
func TestAllPickersServeEveryTaskOnce(t *testing.T) {
	topo := cluster.MustHomogeneous(6, 2)
	tasks := mkTasks(40, 6, []int64{0, 10, 500, 70, 0, 30}, 5)
	for name, f := range allFactories() {
		p := f(tasks, topo)
		if p.Remaining() != len(tasks) {
			t.Errorf("%s: Remaining = %d initially", name, p.Remaining())
		}
		_, _, served := drain(p, 6)
		if served != len(tasks) {
			t.Errorf("%s served %d of %d tasks", name, served, len(tasks))
		}
		if p.Remaining() != 0 {
			t.Errorf("%s: Remaining = %d after drain", name, p.Remaining())
		}
		if _, ok := p.Next(0); ok {
			t.Errorf("%s handed out a task after drain", name)
		}
	}
}

func TestAllPickersServeEveryTaskOnceQuick(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	f := func(ws []uint16, seed int64) bool {
		weights := make([]int64, len(ws))
		for i, w := range ws {
			weights[i] = int64(w % 1000)
		}
		n := len(ws)
		if n == 0 {
			n = 1
		}
		tasks := mkTasks(n, 4, weights, seed)
		for _, fac := range allFactories() {
			p := fac(tasks, topo)
			seen := make(map[hdfs.BlockID]bool)
			for {
				task, ok := p.Next(cluster.NodeID(int(seed) & 3))
				if !ok {
					break
				}
				if seen[task.Block] {
					return false
				}
				seen[task.Block] = true
				seed++
			}
			if len(seen) != len(tasks) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLocalityPickerPrefersLocalFIFO(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	tasks := []Task{
		{Block: 0, Index: 0, Locations: []cluster.NodeID{1}},
		{Block: 1, Index: 1, Locations: []cluster.NodeID{0}},
		{Block: 2, Index: 2, Locations: []cluster.NodeID{0}},
	}
	p := NewLocalityPicker(tasks, topo)
	if got, _ := p.Next(0); got.Block != 1 {
		t.Errorf("node 0 first pick = %d, want its first local block 1", got.Block)
	}
	if got, _ := p.Next(0); got.Block != 2 {
		t.Errorf("node 0 second pick = %d, want 2", got.Block)
	}
	// Node 0 has no locals left: falls back to remote FIFO (block 0).
	if got, _ := p.Next(0); got.Block != 0 {
		t.Errorf("node 0 remote pick = %d, want 0", got.Block)
	}
	if p.Name() != "hadoop-locality" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestDataNetPickerBalancesBetterThanLocality(t *testing.T) {
	topo := cluster.MustHomogeneous(8, 2)
	// Clustered weights: a few heavy blocks, many empty ones.
	weights := make([]int64, 80)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 16; i++ {
		weights[rng.Intn(80)] += int64(2000 + rng.Intn(4000))
	}
	tasks := mkTasks(80, 8, weights, 3)

	imbalance := func(f Factory) float64 {
		loads, _, _ := drain(f(tasks, topo), 8)
		var max, total int64
		for _, l := range loads {
			total += l
			if l > max {
				max = l
			}
		}
		if total == 0 {
			return 0
		}
		return float64(max) / (float64(total) / 8)
	}
	base := imbalance(NewLocalityPicker)
	dn := imbalance(NewDataNetPicker)
	if dn >= base {
		t.Errorf("DataNet imbalance %.2f not better than locality %.2f", dn, base)
	}
	if dn > 1.5 {
		t.Errorf("DataNet imbalance %.2f too high", dn)
	}
}

func TestDataNetPickerHonorsLocalityMostly(t *testing.T) {
	topo := cluster.MustHomogeneous(8, 2)
	weights := make([]int64, 64)
	rng := rand.New(rand.NewSource(4))
	for i := range weights {
		weights[i] = int64(rng.Intn(500))
	}
	tasks := mkTasks(64, 8, weights, 6)
	p := NewDataNetPicker(tasks, topo)
	local, remote := 0, 0
	for i := 0; ; i++ {
		node := cluster.NodeID(i % 8)
		task, ok := p.Next(node)
		if !ok {
			break
		}
		if isLocal(task, node) {
			local++
		} else {
			remote++
		}
	}
	if frac := float64(remote) / float64(local+remote); frac > 0.4 {
		t.Errorf("remote fraction %.2f too high — locality abandoned", frac)
	}
}

func TestCapacityAwareTargets(t *testing.T) {
	// One node 3× faster: it should end with ≈3× the workload.
	specs := []cluster.Node{
		{CPURate: 300e6}, {CPURate: 100e6}, {CPURate: 100e6}, {CPURate: 100e6},
	}
	topo, err := cluster.NewHeterogeneous(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]int64, 60)
	for i := range weights {
		weights[i] = 100
	}
	tasks := mkTasks(60, 4, weights, 8)
	// The capacity preference lives in the precomputed assignment (served
	// queues); execution-time stealing would re-equalize under an
	// artificial round-robin drain, so inspect the assignment directly.
	p := NewCapacityAwarePicker(tasks, topo).(*DataNetPicker)
	loads := p.Workloads()
	fast := float64(loads[0])
	rest := float64(loads[1]+loads[2]+loads[3]) / 3
	if ratio := fast / rest; ratio < 1.8 || ratio > 4.5 {
		t.Errorf("fast-node load ratio = %.2f, want ≈3", ratio)
	}
	if p.Name() != "datanet-capacity" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestLPTPickerServesHeaviestFirst(t *testing.T) {
	topo := cluster.MustHomogeneous(2, 1)
	tasks := []Task{
		{Block: 0, Index: 0, Weight: 10, Locations: []cluster.NodeID{0}},
		{Block: 1, Index: 1, Weight: 99, Locations: []cluster.NodeID{0}},
		{Block: 2, Index: 2, Weight: 50, Locations: []cluster.NodeID{0}},
	}
	p := NewLPTPicker(tasks, topo)
	if got, _ := p.Next(0); got.Weight != 99 {
		t.Errorf("first = %d, want 99", got.Weight)
	}
	if got, _ := p.Next(0); got.Weight != 50 {
		t.Errorf("second = %d, want 50", got.Weight)
	}
	// A node with no locals takes the heaviest remaining global.
	if got, _ := p.Next(1); got.Weight != 10 {
		t.Errorf("remote pick = %d, want 10", got.Weight)
	}
	if p.Name() != "lpt-greedy" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestFlowPickerName(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	p := NewFlowPicker(mkTasks(12, 4, []int64{5}, 9), topo)
	if p.Name() != "maxflow-optimal" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestRandomPickerDeterministicPerSeed(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	tasks := mkTasks(20, 4, []int64{1, 2, 3}, 10)
	seq := func() []hdfs.BlockID {
		p := NewRandomPicker(42)(tasks, topo)
		var out []hdfs.BlockID
		for i := 0; ; i++ {
			task, ok := p.Next(cluster.NodeID(i % 4))
			if !ok {
				break
			}
			out = append(out, task.Block)
		}
		return out
	}
	a, b := seq(), seq()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d", i)
		}
	}
}

func TestStaticPickerStealing(t *testing.T) {
	topo := cluster.MustHomogeneous(2, 1)
	// All blocks local to node 0 only: node 1 must steal.
	tasks := []Task{
		{Block: 0, Index: 0, Weight: 100, Locations: []cluster.NodeID{0}},
		{Block: 1, Index: 1, Weight: 90, Locations: []cluster.NodeID{0}},
		{Block: 2, Index: 2, Weight: 80, Locations: []cluster.NodeID{0}},
	}
	p := NewFlowPicker(tasks, topo)
	got := 0
	for i := 0; i < 10 && p.Remaining() > 0; i++ {
		if _, ok := p.Next(1); ok {
			got++
		} else {
			break
		}
	}
	if got == 0 {
		t.Error("node 1 starved — stealing broken")
	}
}

func TestDataNetWorkloadsAccessor(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	tasks := mkTasks(16, 4, []int64{100, 0, 50}, 11)
	p := NewDataNetPicker(tasks, topo).(*DataNetPicker)
	var want int64
	for _, task := range tasks {
		want += task.Weight
	}
	var got int64
	for _, w := range p.Workloads() {
		got += w
	}
	if got != want {
		t.Errorf("Workloads sum = %d, want %d", got, want)
	}
}
