package sched

// Decision auditing. Every picker remembers which of its rules produced
// the task it last handed out, so the engine can record a per-assignment
// audit trail (internal/trace): for Algorithm 1 that means distinguishing
// the argmin placement on a local replica, the line-12 off-replica assist,
// and execution-time work stealing — the difference between "the plan was
// balanced" and "stealing rescued an unbalanced plan" is invisible in
// aggregate results but obvious in the audit.

// Explanation describes why a picker's most recent Next call returned the
// task it did.
type Explanation struct {
	// Rule names the decision path, namespaced by policy:
	// "algo1.argmin-local", "algo1.line12-assist", "algo1.no-local-replica",
	// "algo1.steal-local", "algo1.steal-global", "locality.local-fifo",
	// "locality.remote-fifo", "delay.remote-after-wait", "lpt.local",
	// "lpt.remote", "random.local", "random.remote", "maxflow.plan",
	// "maxflow.steal".
	Rule string
}

// Explainer is optionally implemented by pickers that can explain their
// most recent successful Next call. The value is only meaningful
// immediately after Next returned ok=true.
type Explainer interface {
	Explain() Explanation
}

// Explain returns the picker's explanation of its last assignment when it
// supports auditing.
func Explain(p Picker) (Explanation, bool) {
	e, ok := p.(Explainer)
	if !ok {
		return Explanation{}, false
	}
	return e.Explain(), true
}

// Explain implements Explainer.
func (p *LocalityPicker) Explain() Explanation { return Explanation{Rule: p.lastRule} }

// Explain implements Explainer.
func (p *DelayedLocalityPicker) Explain() Explanation { return Explanation{Rule: p.lastRule} }

// Explain implements Explainer.
func (p *DataNetPicker) Explain() Explanation { return Explanation{Rule: p.lastRule} }

// Explain implements Explainer.
func (p *LPTPicker) Explain() Explanation { return Explanation{Rule: p.lastRule} }

// Explain implements Explainer.
func (p *RandomPicker) Explain() Explanation { return Explanation{Rule: p.lastRule} }

// Explain implements Explainer.
func (p *StaticPicker) Explain() Explanation { return Explanation{Rule: p.lastRule} }

// Explain implements Explainer by delegating to the wrapped baseline,
// tagging the rule so the audit shows the job ran degraded.
func (p *fallbackPicker) Explain() Explanation {
	if e, ok := p.Picker.(Explainer); ok {
		ex := e.Explain()
		ex.Rule = "fallback." + ex.Rule
		return ex
	}
	return Explanation{Rule: "fallback"}
}
