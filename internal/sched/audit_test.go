package sched

import (
	"strings"
	"testing"

	"datanet/internal/cluster"
	"datanet/internal/hdfs"
)

// auditTasks builds two tasks both replicated on node 0 only, so node 0
// serves local and node 1 is forced remote.
func auditTasks() []Task {
	return []Task{
		{Block: hdfs.BlockID(0), Index: 0, Weight: 100, Bytes: 1 << 18,
			Locations: []cluster.NodeID{0}},
		{Block: hdfs.BlockID(1), Index: 1, Weight: 50, Bytes: 1 << 18,
			Locations: []cluster.NodeID{0}},
	}
}

func TestExplainLocalityPicker(t *testing.T) {
	topo := cluster.MustHomogeneous(2, 1)
	p := NewLocalityPicker(auditTasks(), topo)
	if _, ok := p.Next(0); !ok {
		t.Fatal("no task for node 0")
	}
	ex, ok := Explain(p)
	if !ok || ex.Rule != "locality.local-fifo" {
		t.Fatalf("local pull: ok=%v rule=%q", ok, ex.Rule)
	}
	if _, ok := p.Next(1); !ok {
		t.Fatal("no task for node 1")
	}
	if ex, _ := Explain(p); ex.Rule != "locality.remote-fifo" {
		t.Fatalf("remote pull rule = %q", ex.Rule)
	}
}

func TestExplainDataNetPicker(t *testing.T) {
	topo := cluster.MustHomogeneous(2, 1)
	p := NewDataNetPicker(auditTasks(), topo)
	// Node 0 holds all replicas; the planner puts its work there (or
	// line-12-assists one task away) and node 1 can only steal.
	if _, ok := p.Next(0); !ok {
		t.Fatal("no task for node 0")
	}
	ex, ok := Explain(p)
	if !ok || !strings.HasPrefix(ex.Rule, "algo1.") {
		t.Fatalf("planned pull: ok=%v rule=%q", ok, ex.Rule)
	}
	if _, ok := p.Next(1); !ok {
		t.Fatal("no task for node 1")
	}
	if ex, _ := Explain(p); ex.Rule != "algo1.steal-global" &&
		ex.Rule != "algo1.steal-local" && !strings.HasPrefix(ex.Rule, "algo1.") {
		t.Fatalf("steal rule = %q", ex.Rule)
	}
}

func TestExplainDataNetStealRules(t *testing.T) {
	topo := cluster.MustHomogeneous(2, 1)
	p := NewDataNetPicker(auditTasks(), topo)
	// Drain node 0's queue through node 1 first: every pull from node 1 is
	// a steal, and node 1 holds no replicas, so the rule is steal-global.
	if _, ok := p.Next(1); !ok {
		t.Fatal("steal failed")
	}
	if ex, _ := Explain(p); ex.Rule != "algo1.steal-global" {
		t.Fatalf("off-replica steal rule = %q", ex.Rule)
	}
}

func TestExplainFallbackPrefixesRule(t *testing.T) {
	topo := cluster.MustHomogeneous(2, 1)
	p := NewFallbackLocality("meta corrupt")(auditTasks(), topo)
	if _, ok := p.Next(0); !ok {
		t.Fatal("no task")
	}
	ex, ok := Explain(p)
	if !ok || ex.Rule != "fallback.locality.local-fifo" {
		t.Fatalf("fallback rule = %q (ok=%v)", ex.Rule, ok)
	}
}

// barePicker implements Picker without Explainer.
type barePicker struct{}

func (barePicker) Name() string                     { return "bare" }
func (barePicker) Next(cluster.NodeID) (Task, bool) { return Task{}, false }
func (barePicker) Remaining() int                   { return 0 }

func TestExplainNonExplainer(t *testing.T) {
	if ex, ok := Explain(barePicker{}); ok || ex.Rule != "" {
		t.Fatalf("non-explainer: ok=%v rule=%q", ok, ex.Rule)
	}
}

func TestExplainLPTAndRandomPickers(t *testing.T) {
	topo := cluster.MustHomogeneous(2, 1)
	for _, tc := range []struct {
		factory Factory
		prefix  string
	}{
		{NewLPTPicker, "lpt."},
		{NewRandomPicker(7), "random."},
	} {
		p := tc.factory(auditTasks(), topo)
		if _, ok := p.Next(0); !ok {
			t.Fatalf("%s: no task", tc.prefix)
		}
		ex, ok := Explain(p)
		if !ok || !strings.HasPrefix(ex.Rule, tc.prefix) {
			t.Fatalf("%s picker rule = %q (ok=%v)", tc.prefix, ex.Rule, ok)
		}
	}
}
