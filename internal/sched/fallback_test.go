package sched

import (
	"errors"
	"strings"
	"testing"

	"datanet/internal/cluster"
)

func TestValidateWeights(t *testing.T) {
	if err := ValidateWeights([]int64{1, 0, 5}, 3); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	cases := []struct {
		name    string
		weights []int64
		blocks  int
	}{
		{"missing", nil, 3},
		{"short", []int64{1, 2}, 3},
		{"long", []int64{1, 2, 3, 4}, 3},
		{"negative", []int64{1, -2, 3}, 3},
	}
	for _, c := range cases {
		if err := ValidateWeights(c.weights, c.blocks); !errors.Is(err, ErrBadWeights) {
			t.Errorf("%s: err = %v, want ErrBadWeights", c.name, err)
		}
	}
}

func TestFallbackLocalityServesAndReports(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	tasks := []Task{
		{Index: 0, Weight: 10, Bytes: 100, Locations: []cluster.NodeID{0, 1}},
		{Index: 1, Weight: 20, Bytes: 100, Locations: []cluster.NodeID{2, 3}},
	}
	p := NewFallbackLocality("elasticmap: corrupt encoding")(tasks, topo)
	name := p.Name()
	if !strings.Contains(name, "hadoop-locality") || !strings.Contains(name, "fallback") {
		t.Errorf("fallback name %q must identify both the policy and the degradation", name)
	}
	served := 0
	for p.Remaining() > 0 {
		if _, ok := p.Next(0); !ok {
			break
		}
		served++
	}
	if served != len(tasks) {
		t.Errorf("served %d tasks, want %d", served, len(tasks))
	}
}
