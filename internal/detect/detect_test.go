package detect

import (
	"math"
	"testing"

	"datanet/internal/cluster"
	"datanet/internal/sim"
)

const (
	kBeat sim.Kind = iota
	kTimeout
	kStop
)

// fakeTruth scripts one node's physical fate; all other nodes are healthy.
type fakeTruth struct {
	node     cluster.NodeID
	crashAt  float64
	rejoinAt float64 // <= crashAt means permanent; 0 with crashAt 0 means healthy
	cpu      map[cluster.NodeID]float64
	crashed  bool
}

func (f *fakeTruth) DeadAt(id cluster.NodeID, t float64) bool {
	if !f.crashed || id != f.node || t < f.crashAt {
		return false
	}
	return f.rejoinAt <= f.crashAt || t < f.rejoinAt
}

func (f *fakeTruth) RejoinAfter(id cluster.NodeID, t float64) (float64, bool) {
	if !f.crashed || id != f.node || f.rejoinAt <= f.crashAt {
		return 0, false
	}
	if f.rejoinAt > t {
		return f.rejoinAt, true
	}
	return 0, false
}

func (f *fakeTruth) CPURate(id cluster.NodeID, base float64) float64 {
	if s, ok := f.cpu[id]; ok {
		return base * s
	}
	return base
}

// harness runs a detector over n nodes until simulated time end.
type harness struct {
	det      *Detector
	kern     *sim.Kernel
	suspects []struct {
		id cluster.NodeID
		t  float64
	}
	clears []struct {
		id cluster.NodeID
		t  float64
	}
	beats int
}

func newHarness(t *testing.T, cfg Config, truth Truth, n int, end float64) *harness {
	t.Helper()
	det, err := New(cfg, truth, n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := &harness{det: det, kern: sim.New(nil)}
	det.SetHooks(Hooks{
		Beat: func(id cluster.NodeID, at float64) error { h.beats++; return nil },
		Suspect: func(id cluster.NodeID, at float64) error {
			h.suspects = append(h.suspects, struct {
				id cluster.NodeID
				t  float64
			}{id, at})
			return nil
		},
		Clear: func(id cluster.NodeID, at float64) error {
			h.clears = append(h.clears, struct {
				id cluster.NodeID
				t  float64
			}{id, at})
			return nil
		},
	})
	det.Bind(h.kern, kBeat, kTimeout, 2)
	h.kern.Handle(kStop, func(*sim.Event) error { h.kern.Stop(); return nil })
	h.kern.Post(sim.Event{At: end, Kind: kStop, Prio: 100})
	if err := h.kern.Run(); err != nil {
		t.Fatalf("kernel run: %v", err)
	}
	return h
}

func TestHealthyClusterNeverSuspected(t *testing.T) {
	h := newHarness(t, Config{Mode: Heartbeat}, &fakeTruth{}, 4, 20)
	if len(h.suspects) != 0 {
		t.Fatalf("healthy cluster produced %d suspicions: %+v", len(h.suspects), h.suspects)
	}
	if h.beats == 0 {
		t.Fatal("no beats delivered")
	}
	for id := 0; id < 4; id++ {
		if !h.det.Assignable(cluster.NodeID(id)) {
			t.Fatalf("node %d not assignable on a healthy cluster", id)
		}
	}
}

func TestCrashSuspectedAfterTimeout(t *testing.T) {
	// Interval 0.5, timeout 1.5. Crash at 1.3: last beat at 1.0, so the
	// suspicion matures at 2.5 — detection latency 1.2.
	truth := &fakeTruth{node: 1, crashAt: 1.3, crashed: true}
	h := newHarness(t, Config{Mode: Heartbeat}, truth, 3, 10)
	if len(h.suspects) != 1 {
		t.Fatalf("want exactly 1 suspicion, got %+v", h.suspects)
	}
	s := h.suspects[0]
	if s.id != 1 {
		t.Fatalf("suspected node %d, want 1", s.id)
	}
	if want := 2.5; math.Abs(s.t-want) > 1e-9 {
		t.Fatalf("suspicion at %v, want %v (last beat 1.0 + timeout 1.5)", s.t, want)
	}
	if s.t <= truth.crashAt {
		t.Fatalf("suspicion at %v not strictly after the crash at %v", s.t, truth.crashAt)
	}
	if h.det.Assignable(1) {
		t.Fatal("suspected node still assignable")
	}
	if !h.det.Assignable(0) || !h.det.Assignable(2) {
		t.Fatal("healthy nodes lost assignability")
	}
}

func TestRejoinClearsSuspicion(t *testing.T) {
	truth := &fakeTruth{node: 2, crashAt: 1.3, rejoinAt: 4.0, crashed: true}
	h := newHarness(t, Config{Mode: Heartbeat}, truth, 3, 10)
	if len(h.suspects) != 1 || h.suspects[0].id != 2 {
		t.Fatalf("suspicions: %+v", h.suspects)
	}
	if len(h.clears) != 1 || h.clears[0].id != 2 {
		t.Fatalf("clears: %+v", h.clears)
	}
	// The restarted node's first beat is at the rejoin instant.
	if want := 4.0; math.Abs(h.clears[0].t-want) > 1e-9 {
		t.Fatalf("cleared at %v, want %v", h.clears[0].t, want)
	}
	if !h.det.Assignable(2) {
		t.Fatal("rejoined node not assignable")
	}
}

// TestPhiAdaptsToSlowNode is the detector's reason to exist: a node at 20%
// CPU beats every 2.5 s against a fixed 1.5 s timeout, so the fixed
// detector condemns it again after every beat, while φ-accrual widens its
// leash after the warmup and stops flapping.
func TestPhiAdaptsToSlowNode(t *testing.T) {
	slow := func() Truth {
		return &fakeTruth{cpu: map[cluster.NodeID]float64{1: 0.2}}
	}
	fixed := newHarness(t, Config{Mode: Heartbeat}, slow(), 3, 30)
	phi := newHarness(t, Config{Mode: Phi}, slow(), 3, 30)

	for _, s := range fixed.suspects {
		if s.id != 1 {
			t.Fatalf("fixed detector suspected healthy node %d", s.id)
		}
	}
	if len(fixed.suspects) < 3 {
		t.Fatalf("fixed detector should flap on the slow node, got %d suspicions", len(fixed.suspects))
	}
	// φ pays at most the warmup false alarm (the prior gap estimate is the
	// healthy interval), then adapts and stays quiet.
	if len(phi.suspects) > 1 {
		t.Fatalf("phi detector flapped %d times on a merely slow node: %+v", len(phi.suspects), phi.suspects)
	}
	if len(phi.suspects) == 1 && len(phi.clears) != 1 {
		t.Fatalf("phi warmup suspicion never cleared: %+v", phi.clears)
	}
}

func TestResponseAtAnalytic(t *testing.T) {
	truth := &fakeTruth{}
	h := newHarness(t, Config{Mode: Heartbeat}, truth, 2, 10.25)
	// Last delivered beat ≤ 10.25 is at 10.0. A crash at 17.2 projects the
	// chain forward: last beat before the crash at 17.0, response 18.5.
	got := h.det.ResponseAt(0, 17.2)
	if want := 18.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ResponseAt = %v, want %v", got, want)
	}
	// A beat exactly at the crash instant is never sent.
	got = h.det.ResponseAt(0, 17.0)
	if want := 18.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ResponseAt at beat-coincident crash = %v, want %v", got, want)
	}
	// The nil detector is the oracle.
	var nilDet *Detector
	if got := nilDet.ResponseAt(0, 3.25); got != 3.25 {
		t.Fatalf("nil ResponseAt = %v, want crash instant", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Mode: Oracle}, &fakeTruth{}, 2); err == nil {
		t.Fatal("oracle mode must not build a detector")
	}
	if _, err := New(Config{Mode: Heartbeat, Interval: math.Inf(1)}, &fakeTruth{}, 2); err == nil {
		t.Fatal("infinite interval accepted")
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	for _, s := range []string{"oracle", "heartbeat", "phi"} {
		m, err := ParseMode(s)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", s, err)
		}
		if m.String() != s {
			t.Fatalf("round-trip %q -> %q", s, m.String())
		}
	}
}
