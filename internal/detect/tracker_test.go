package detect

import (
	"reflect"
	"testing"
)

func TestTrackerFixedTimeout(t *testing.T) {
	tr, err := NewTracker(Config{Mode: Heartbeat, Interval: 1, Timeout: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr.Watch(0, 0)
	tr.Watch(1, 0)
	// Node 0 beats on schedule; node 1 goes silent after t=1, so with a
	// 3-second timeout it must be suspected strictly after t=4.
	for _, now := range []float64{1, 2, 3, 4} {
		tr.Beat(0, now)
		if now <= 1 {
			tr.Beat(1, now)
		}
		if sus := tr.Sweep(now); len(sus) != 0 {
			t.Fatalf("suspected too early at t=%g: %v", now, sus)
		}
	}
	if sus := tr.Sweep(4.5); !reflect.DeepEqual(sus, []int{1}) {
		t.Fatalf("Sweep(4.5) = %v, want [1]", sus)
	}
	if tr.State(1) != Suspected || tr.State(0) != Live {
		t.Fatalf("states: n0=%v n1=%v", tr.State(0), tr.State(1))
	}
	// A later beat clears the suspicion — the rejoin / false-alarm path.
	if !tr.Beat(1, 6) {
		t.Fatal("Beat after suspicion did not report cleared")
	}
	if tr.State(1) != Live {
		t.Fatal("node 1 not Live after clearing beat")
	}
	if tr.Suspicions != 1 {
		t.Fatalf("Suspicions = %d, want 1", tr.Suspicions)
	}
}

func TestTrackerPhiAdaptsToSlowBeats(t *testing.T) {
	tr, err := NewTracker(Config{Mode: Phi, Interval: 1, PhiFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr.Watch(7, 0)
	// A consistently slow node (beats every 2s) trains the EWMA; after
	// warmup its timeout is ~3×2s, so a 5s gap must not condemn it.
	for _, now := range []float64{2, 4, 6, 8} {
		tr.Beat(7, now)
		if sus := tr.Sweep(now); len(sus) != 0 {
			t.Fatalf("slow-but-steady node suspected at t=%g", now)
		}
	}
	if sus := tr.Sweep(13); len(sus) != 0 {
		t.Fatalf("phi suspected within adapted leash: %v", sus)
	}
	if sus := tr.Sweep(30); !reflect.DeepEqual(sus, []int{7}) {
		t.Fatalf("phi never suspected a truly dead node: %v", sus)
	}
}

func TestTrackerMembership(t *testing.T) {
	tr, err := NewTracker(Config{Mode: Heartbeat, Interval: 1, Timeout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.State(3) != Suspected {
		t.Fatal("unwatched node should report Suspected")
	}
	tr.Watch(3, 10)
	if tr.State(3) != Live {
		t.Fatal("watched node should start Live")
	}
	tr.Watch(3, 99) // duplicate Watch must not reset anything observable
	tr.Forget(3)
	if tr.State(3) != Suspected {
		t.Fatal("forgotten node should report Suspected")
	}
	if sus := tr.Sweep(100); len(sus) != 0 {
		t.Fatalf("forgotten node surfaced in sweep: %v", sus)
	}
	if _, err := NewTracker(Config{Mode: Oracle}); err == nil {
		t.Fatal("NewTracker accepted oracle mode")
	}
}

func TestTrackerSweepDeterministicOrder(t *testing.T) {
	tr, err := NewTracker(Config{Mode: Heartbeat, Interval: 1, Timeout: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id := 9; id >= 0; id-- {
		tr.Watch(id, 0)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if sus := tr.Sweep(5); !reflect.DeepEqual(sus, want) {
		t.Fatalf("Sweep order not ascending: %v", sus)
	}
}
