package detect

import "fmt"

// Tracker is the kernel-free sibling of Detector: the same Live→Suspected
// state machine and timeout policies (fixed K-missed-beats or φ-accrual
// EWMA), but driven by explicit Beat/Sweep calls instead of sim events.
// The metadata cluster uses it in two regimes with one code path — the
// chaos harness advances a logical clock tick by tick, and the serving
// daemon feeds it wall-clock timestamps — so failover behavior proved
// under chaos is the behavior production runs.
//
// Unlike Detector, membership is dynamic: nodes join (Watch) and leave
// (Forget) as the admin plane adds and decommissions them. The zero
// Tracker is not usable; construct with NewTracker.
type Tracker struct {
	cfg Config
	ns  map[int]*trackState
	// Suspicions counts Live→Suspected transitions (true and false).
	Suspicions int
}

type trackState struct {
	state    State
	lastBeat float64
	meanGap  float64
}

// NewTracker builds an empty tracker. cfg must describe a non-oracle mode;
// the oracle needs no tracker, exactly as it needs no Detector.
func NewTracker(cfg Config) (*Tracker, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode == Oracle {
		return nil, fmt.Errorf("%w: oracle mode needs no tracker", ErrBadConfig)
	}
	return &Tracker{cfg: cfg, ns: map[int]*trackState{}}, nil
}

// Interval returns the configured heartbeat period.
func (t *Tracker) Interval() float64 { return t.cfg.Interval }

// Mode returns the configured detection mode.
func (t *Tracker) Mode() Mode { return t.cfg.Mode }

// Watch starts tracking a node, believed live as of now (registration is
// its first implicit beat). Watching an already-watched node is a no-op.
func (t *Tracker) Watch(id int, now float64) {
	if _, ok := t.ns[id]; ok {
		return
	}
	t.ns[id] = &trackState{state: Live, lastBeat: now, meanGap: t.cfg.Interval}
}

// Forget stops tracking a node (decommission/removal).
func (t *Tracker) Forget(id int) { delete(t.ns, id) }

// Beat records a heartbeat arrival and reports whether it cleared a
// suspicion (the caller's rejoin/false-alarm hook).
func (t *Tracker) Beat(id int, now float64) (cleared bool) {
	st, ok := t.ns[id]
	if !ok {
		return false
	}
	if gap := now - st.lastBeat; gap > 0 {
		// Same EWMA (α=1/2) as the kernel Detector: adapts within a couple
		// of beats, still smooths one-off hiccups.
		st.meanGap = (st.meanGap + gap) / 2
	}
	st.lastBeat = now
	cleared = st.state == Suspected
	st.state = Live
	return cleared
}

// timeout is the node's current suspicion timeout under the configured
// policy — fixed for Heartbeat, PhiFactor × observed mean gap (floored at
// one interval) for Phi.
func (t *Tracker) timeout(st *trackState) float64 {
	if t.cfg.Mode == Phi {
		to := t.cfg.PhiFactor * st.meanGap
		if to < t.cfg.Interval {
			to = t.cfg.Interval
		}
		return to
	}
	return t.cfg.Timeout
}

// Sweep matures timeouts at now and returns the IDs newly suspected since
// the last sweep, in ascending order (determinism: callers react in a
// fixed order regardless of map iteration).
func (t *Tracker) Sweep(now float64) []int {
	var newly []int
	for id, st := range t.ns {
		if st.state == Live && now-st.lastBeat > t.timeout(st) {
			st.state = Suspected
			t.Suspicions++
			newly = append(newly, id)
		}
	}
	sortInts(newly)
	return newly
}

// State returns the belief about a node; unwatched nodes report Suspected
// (the caller should never schedule onto them).
func (t *Tracker) State(id int) State {
	if st, ok := t.ns[id]; ok {
		return st.state
	}
	return Suspected
}

// sortInts is a tiny insertion sort: suspicion batches are a handful of
// IDs, not worth pulling in package sort's interface machinery.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
