// Package detect is a heartbeat-based failure detector for the simulated
// MapReduce master. The engine historically learned of node deaths from
// the fault injector itself — an oracle with zero detection latency. Real
// masters infer death from missed heartbeats, pay a timeout before
// reacting, and sometimes condemn nodes that were merely slow. This
// package models that honestly, on the same deterministic sim kernel the
// filter phase runs on.
//
// Two detector variants share one state machine:
//
//   - Heartbeat: a fixed timeout of K missed beats (Timeout = K·Interval).
//     A node whose hardware runs slower than 1/K of rated speed beats less
//     often than the timeout allows and is falsely suspected — the classic
//     straggler/failure ambiguity.
//   - Phi: a φ-accrual-style adaptive timeout. The detector tracks each
//     node's observed inter-arrival gap (EWMA) and suspects only after
//     PhiFactor times that gap, so a consistently slow node earns a longer
//     leash after a warmup beat or two instead of being condemned forever.
//
// The detector owns *belief*, never truth: it reads the injector only the
// way a real network would (a dead node's beats do not arrive; a slowed
// node's beats arrive late). The engine reacts to the detector's Suspect/
// Clear transitions; the gap between a crash and its Suspect call is the
// detection latency the oracle mode never paid.
//
// State machine per node:
//
//	Live ──(timeout matures with no beat)──▶ Suspected
//	Suspected ──(a beat arrives: rejoin or false alarm)──▶ Live
//
// A permanently dead node simply stays Suspected; "dead" is not a detector
// state because the master can never distinguish it from "very late".
package detect

import (
	"errors"
	"fmt"
	"math"

	"datanet/internal/cluster"
	"datanet/internal/sim"
)

// Mode selects how the master learns of failures.
type Mode int

const (
	// Oracle is the historical behavior: the engine reads the injector
	// directly and reacts to crashes at the crash instant. No Detector is
	// constructed in this mode; it exists so configurations can say
	// "detect.Oracle" explicitly and golden schedules stay byte-identical.
	Oracle Mode = iota
	// Heartbeat suspects after a fixed timeout of K missed beats.
	Heartbeat
	// Phi adapts the timeout to each node's observed beat cadence.
	Phi
)

// String names the mode as the CLI spells it.
func (m Mode) String() string {
	switch m {
	case Oracle:
		return "oracle"
	case Heartbeat:
		return "heartbeat"
	case Phi:
		return "phi"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ErrBadConfig reports an invalid detector configuration.
var ErrBadConfig = errors.New("detect: invalid config")

// ParseMode parses a CLI mode name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "oracle", "":
		return Oracle, nil
	case "heartbeat", "hb":
		return Heartbeat, nil
	case "phi":
		return Phi, nil
	}
	return Oracle, fmt.Errorf("%w: unknown mode %q (want oracle, heartbeat or phi)", ErrBadConfig, s)
}

// Default detector parameters: beats every half second of simulated time,
// suspicion after three missed beats — Hadoop-like proportions scaled to
// the simulation's task durations.
const (
	DefaultInterval  = 0.5
	DefaultMissed    = 3
	DefaultPhiFactor = 3
)

// Config parameterizes the detector.
type Config struct {
	// Mode selects oracle, heartbeat or phi detection.
	Mode Mode
	// Interval is the heartbeat period of a healthy node, in simulated
	// seconds. Slowed nodes beat proportionally less often (their CPU runs
	// the heartbeat loop too). Zero selects DefaultInterval.
	Interval float64
	// Timeout is the fixed suspicion timeout of Heartbeat mode: a node is
	// suspected when Timeout elapses since its last beat. Zero selects
	// DefaultMissed × Interval.
	Timeout float64
	// PhiFactor scales the adaptive timeout of Phi mode: a node is
	// suspected when PhiFactor × its observed mean beat gap elapses since
	// its last beat. Zero selects DefaultPhiFactor.
	PhiFactor float64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultMissed * c.Interval
	}
	if c.PhiFactor <= 0 {
		c.PhiFactor = DefaultPhiFactor
	}
	return c
}

// Validate rejects non-finite or non-positive parameters.
func (c Config) Validate() error {
	for _, v := range []struct {
		name string
		v    float64
	}{{"interval", c.Interval}, {"timeout", c.Timeout}, {"phi-factor", c.PhiFactor}} {
		if v.v <= 0 || math.IsNaN(v.v) || math.IsInf(v.v, 0) {
			return fmt.Errorf("%w: %s %v must be positive and finite", ErrBadConfig, v.name, v.v)
		}
	}
	if c.Mode != Oracle && c.Mode != Heartbeat && c.Mode != Phi {
		return fmt.Errorf("%w: unknown mode %d", ErrBadConfig, int(c.Mode))
	}
	return nil
}

// Truth is the slice of the fault injector the detector's *physics*
// depend on: whether a node's beat can physically be emitted at an
// instant, when a dead node restarts, and how slow its hardware runs.
// The detector never exposes these answers to the master's belief — it
// only uses them to decide which beats arrive, and when.
type Truth interface {
	DeadAt(id cluster.NodeID, t float64) bool
	RejoinAfter(id cluster.NodeID, t float64) (float64, bool)
	CPURate(id cluster.NodeID, base float64) float64
}

// State is a node's belief state at the master.
type State uint8

const (
	// Live means beats are arriving on time.
	Live State = iota
	// Suspected means the node's timeout matured with no beat; the master
	// treats it as dead until a beat proves otherwise.
	Suspected
)

// Hooks are the engine's reactions to detector transitions. All are
// optional; a non-nil error aborts the kernel run. Beat fires on every
// arriving beat (after the node's belief state is updated, before Clear),
// so the engine can treat a restarted node's first beat as its
// re-registration. Suspect fires on Live→Suspected, Clear on
// Suspected→Live.
type Hooks struct {
	Beat    func(id cluster.NodeID, t float64) error
	Suspect func(id cluster.NodeID, t float64) error
	Clear   func(id cluster.NodeID, t float64) error
}

// nodeState is the per-node detector bookkeeping.
type nodeState struct {
	state    State
	lastBeat float64
	// meanGap is the EWMA of observed inter-beat gaps (phi mode's jitter
	// estimate), seeded with the configured interval.
	meanGap float64
	// armGen invalidates stale timeout events: each arriving beat re-arms
	// the timeout and bumps the generation.
	armGen int
}

// Detector runs the heartbeat protocol for every node of one job.
type Detector struct {
	cfg     Config
	truth   Truth
	ns      []nodeState
	kern    *sim.Kernel
	beat    sim.Kind
	timeout sim.Kind
	hooks   Hooks
	// Suspicions counts Live→Suspected transitions (true and false).
	Suspicions int
}

// New builds a detector for n nodes. cfg must describe a non-oracle mode
// (the oracle needs no detector).
func New(cfg Config, truth Truth, n int) (*Detector, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode == Oracle {
		return nil, fmt.Errorf("%w: oracle mode needs no detector", ErrBadConfig)
	}
	d := &Detector{cfg: cfg, truth: truth, ns: make([]nodeState, n)}
	for i := range d.ns {
		d.ns[i].meanGap = cfg.Interval
	}
	return d, nil
}

// SetHooks installs the engine's transition callbacks.
func (d *Detector) SetHooks(h Hooks) { d.hooks = h }

// Interval returns the configured heartbeat period.
func (d *Detector) Interval() float64 { return d.cfg.Interval }

// Mode returns the configured detection mode.
func (d *Detector) Mode() Mode { return d.cfg.Mode }

// State returns the master's belief about the node.
func (d *Detector) State(id cluster.NodeID) State { return d.ns[id].state }

// Assignable reports whether the master will hand the node work: only
// nodes believed live get assignments.
func (d *Detector) Assignable(id cluster.NodeID) bool { return d.ns[id].state == Live }

// period is the node's actual beat period: the configured interval
// stretched by the node's CPU slowdown (a degraded machine runs its
// heartbeat loop slower too — that is exactly the ambiguity the φ
// variant exists to absorb).
func (d *Detector) period(id cluster.NodeID) float64 {
	f := d.truth.CPURate(id, 1)
	if f <= 0 || f > 1 {
		f = 1
	}
	return d.cfg.Interval / f
}

// timeoutFor is the node's current suspicion timeout.
func (d *Detector) timeoutFor(id cluster.NodeID) float64 {
	if d.cfg.Mode == Phi {
		to := d.cfg.PhiFactor * d.ns[id].meanGap
		if to < d.cfg.Interval {
			to = d.cfg.Interval
		}
		return to
	}
	return d.cfg.Timeout
}

// Bind registers the detector's handlers on the kernel and posts every
// node's first beat and first timeout. beatKind/timeoutKind are kernel
// event kinds owned by the caller; prio orders detector events against the
// caller's own (beats deliver at prio, timeouts at prio+1, so a beat
// arriving exactly at its timeout instant clears the node first).
// Registration is the job start: every node is believed live at t=0.
func (d *Detector) Bind(k *sim.Kernel, beatKind, timeoutKind sim.Kind, prio int8) {
	d.kern = k
	d.beat = beatKind
	d.timeout = timeoutKind
	k.Handle(beatKind, d.onBeat)
	k.Handle(timeoutKind, d.onTimeout)
	for i := range d.ns {
		id := cluster.NodeID(i)
		k.Post(sim.Event{At: d.period(id), Kind: beatKind, Prio: prio, K1: int64(id)})
		k.Post(sim.Event{At: d.timeoutFor(id), Kind: timeoutKind, Prio: prio + 1,
			K1: int64(id), Payload: 0})
	}
}

// onBeat delivers one node's heartbeat instant. If the node is physically
// dead the beat never arrives; the chain re-anchors at the node's restart
// (its first beat after rejoining doubles as re-registration). A live
// node's beat updates the gap estimate, re-arms the timeout, clears any
// suspicion, and schedules the next beat.
func (d *Detector) onBeat(ev *sim.Event) error {
	id := cluster.NodeID(ev.K1)
	t := ev.At
	if d.truth.DeadAt(id, t) {
		if rj, ok := d.truth.RejoinAfter(id, t); ok {
			d.kern.Post(sim.Event{At: rj, Kind: d.beat, Prio: ev.Prio, K1: ev.K1})
		}
		return nil // the beat was never sent; the timeout will mature
	}
	st := &d.ns[id]
	gap := t - st.lastBeat
	// EWMA with α=1/2: adapts within a couple of beats, still smooths
	// one-off hiccups. Deterministic, like everything on this clock.
	st.meanGap = (st.meanGap + gap) / 2
	st.lastBeat = t
	st.armGen++
	d.kern.Post(sim.Event{At: t + d.timeoutFor(id), Kind: d.timeout, Prio: ev.Prio + 1,
		K1: ev.K1, Payload: st.armGen})
	wasSuspected := st.state == Suspected
	st.state = Live
	if d.hooks.Beat != nil {
		if err := d.hooks.Beat(id, t); err != nil {
			return err
		}
	}
	if wasSuspected && d.hooks.Clear != nil {
		if err := d.hooks.Clear(id, t); err != nil {
			return err
		}
	}
	d.kern.Post(sim.Event{At: t + d.period(id), Kind: d.beat, Prio: ev.Prio, K1: ev.K1})
	return nil
}

// onTimeout matures one armed suspicion timeout. A beat since arming
// bumped the generation and this event is stale; otherwise the node
// missed its deadline and is suspected.
func (d *Detector) onTimeout(ev *sim.Event) error {
	id := cluster.NodeID(ev.K1)
	st := &d.ns[id]
	if ev.Payload.(int) != st.armGen {
		return nil // re-armed by a later beat
	}
	if st.state == Suspected {
		return nil
	}
	st.state = Suspected
	d.Suspicions++
	if d.hooks.Suspect != nil {
		return d.hooks.Suspect(id, ev.At)
	}
	return nil
}

// ResponseAt predicts when the master would learn of a crash at crashAt,
// for crashes striking after the kernel loop has drained (the analysis
// phase runs on closed-form durations, not events). The node's beat chain
// continues at its period from the last observed beat; the last beat
// strictly before the crash plus the node's current timeout is the
// suspicion instant. The result never precedes the crash.
func (d *Detector) ResponseAt(id cluster.NodeID, crashAt float64) float64 {
	if d == nil {
		return crashAt // oracle: the master reacts instantly
	}
	st := d.ns[id]
	p := d.period(id)
	last := st.lastBeat
	if crashAt > last {
		last += math.Floor((crashAt-last)/p) * p
		if last >= crashAt {
			last -= p // a beat at the crash instant is never sent
		}
	}
	rt := last + d.timeoutFor(id)
	if rt < crashAt {
		rt = crashAt
	}
	return rt
}
