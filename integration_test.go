package datanet_test

// Integration tests: cross-module flows a downstream deployment would hit,
// driven through the public API plus the internal packages the facade
// composes.

import (
	"reflect"
	"testing"

	"datanet"
	"datanet/internal/cluster"
	"datanet/internal/elasticmap"
	"datanet/internal/gen"
	"datanet/internal/hdfs"
	"datanet/internal/records"
)

// TestLifecycleWithNodeFailure: store → build meta → run; kill a node and
// re-replicate; re-run. The job's *output* must be identical (the data
// never changed) even though the layout did.
func TestLifecycleWithNodeFailure(t *testing.T) {
	topo := cluster.MustHomogeneous(8, 2)
	fs, err := hdfs.NewFileSystem(topo, hdfs.Config{BlockSize: 32 << 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Movies(gen.MovieConfig{Movies: 150, Reviews: 6000, Seed: 10})
	if _, err := fs.Write("log", recs); err != nil {
		t.Fatal(err)
	}
	run := func() map[string]string {
		meta, err := datanet.BuildMeta(fs, "log", datanet.MetaOptions{Alpha: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := datanet.Job{
			FS: fs, File: "log", Target: gen.MovieID(0),
			App: datanet.WordCount(), Scheduler: datanet.SchedulerDataNet,
			Meta: meta, Execute: true,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	before := run()

	moved, err := fs.DecommissionNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("decommission moved nothing")
	}
	if bad := fs.ReplicationHealth(); len(bad) != 0 {
		t.Fatalf("replication broken: %v", bad)
	}

	after := run()
	if !reflect.DeepEqual(before, after) {
		t.Error("job output changed after re-replication — data integrity violated")
	}
	// The dead node must receive no tasks.
	meta, _ := datanet.BuildMeta(fs, "log", datanet.MetaOptions{Alpha: 0.3})
	res, err := datanet.Job{
		FS: fs, File: "log", Target: gen.MovieID(0),
		App: datanet.WordCount(), Scheduler: datanet.SchedulerLocality, Meta: meta,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 holds no replicas; with the locality baseline it can still
	// get remote work, but its workload is whatever it scanned — verify
	// the filesystem state instead: zero local blocks.
	if len(fs.NodeBlocks(2)) != 0 {
		t.Error("decommissioned node still holds replicas")
	}
	_ = res
}

// TestMetaPersistenceDrivesSameScheduling: an encoded+decoded ElasticMap
// must produce byte-identical scheduler weights.
func TestMetaPersistenceDrivesSameScheduling(t *testing.T) {
	topo := cluster.MustHomogeneous(6, 2)
	fs, err := hdfs.NewFileSystem(topo, hdfs.Config{BlockSize: 32 << 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Events(gen.EventConfig{Events: 8000, Seed: 11})
	if _, err := fs.Write("events", recs); err != nil {
		t.Fatal(err)
	}
	meta, err := datanet.BuildMeta(fs, "events", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := meta.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := datanet.DecodeMeta(blob, "events")
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range gen.EventTypes {
		if !reflect.DeepEqual(meta.Weights(sub), back.Weights(sub)) {
			t.Fatalf("weights diverge for %s after persistence", sub)
		}
	}
}

// TestParallelMetaOnRealLayout: BuildParallel over the blocks of a real
// filesystem equals the facade's sequential build.
func TestParallelMetaOnRealLayout(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	fs, err := hdfs.NewFileSystem(topo, hdfs.Config{BlockSize: 32 << 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.WorldCup(gen.WorldCupConfig{Requests: 10000, Seed: 12})
	if _, err := fs.Write("web", recs); err != nil {
		t.Fatal(err)
	}
	meta, err := datanet.BuildMeta(fs, "web", datanet.MetaOptions{Alpha: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	blocks, _ := fs.Blocks("web")
	perBlock := make([][]records.Record, len(blocks))
	for i, b := range blocks {
		perBlock[i] = b.Records
	}
	par := elasticmap.BuildParallel(perBlock, meta.Array().Options(), 4)
	for i := 0; i < 32; i++ {
		sub := gen.TeamID(i)
		if par.Estimate(sub) != meta.Array().Estimate(sub) {
			t.Errorf("parallel estimate diverges for %s", sub)
		}
	}
}

// TestSchedulingNeverChangesResults: every scheduler must produce the
// exact same application output — scheduling is about time, not answers.
func TestSchedulingNeverChangesResults(t *testing.T) {
	topo := cluster.MustHomogeneous(6, 2)
	fs, err := hdfs.NewFileSystem(topo, hdfs.Config{BlockSize: 32 << 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Movies(gen.MovieConfig{Movies: 80, Reviews: 4000, Seed: 13})
	if _, err := fs.Write("log", recs); err != nil {
		t.Fatal(err)
	}
	meta, err := datanet.BuildMeta(fs, "log", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var reference map[string]string
	for _, s := range []datanet.Scheduler{
		datanet.SchedulerLocality, datanet.SchedulerDataNet,
		datanet.SchedulerCapacityAware, datanet.SchedulerMaxFlow, datanet.SchedulerLPT,
	} {
		res, err := datanet.Job{
			FS: fs, File: "log", Target: gen.MovieID(1),
			App: datanet.WordHistogram(), Scheduler: s, Meta: meta, Execute: true,
		}.Run()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if reference == nil {
			reference = res.Output
			continue
		}
		if !reflect.DeepEqual(res.Output, reference) {
			t.Errorf("%v produced different output", s)
		}
	}
}

// TestGrowingLogIncrementalMeta: append new data to a new file, extend the
// meta with Append, and verify estimates match a from-scratch build.
func TestGrowingLogIncrementalMeta(t *testing.T) {
	topo := cluster.MustHomogeneous(4, 2)
	fs, err := hdfs.NewFileSystem(topo, hdfs.Config{BlockSize: 32 << 10, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	day1 := gen.Movies(gen.MovieConfig{Movies: 50, Reviews: 3000, Seed: 14})
	day2 := gen.Movies(gen.MovieConfig{Movies: 50, Reviews: 3000, Seed: 15})
	if _, err := fs.Write("day1", day1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("day2", day2); err != nil {
		t.Fatal(err)
	}
	meta1, err := datanet.BuildMeta(fs, "day1", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	arr := meta1.Array()
	blocks2, _ := fs.Blocks("day2")
	per2 := make([][]records.Record, len(blocks2))
	for i, b := range blocks2 {
		per2[i] = b.Records
	}
	arr.Append(per2)

	// Reference: both days' records as one stream of blocks.
	blocks1, _ := fs.Blocks("day1")
	var all [][]records.Record
	for _, b := range blocks1 {
		all = append(all, b.Records)
	}
	all = append(all, per2...)
	ref := elasticmap.Build(all, arr.Options())
	for i := 0; i < 50; i += 7 {
		sub := gen.MovieID(i)
		if arr.Estimate(sub) != ref.Estimate(sub) {
			t.Errorf("incremental estimate diverges for %s", sub)
		}
	}
}
