package main

import (
	"os"
	"path/filepath"
	"testing"

	"datanet/internal/gen"
	"datanet/internal/records"
)

// writeDataset produces a small dataset file like cmd/datagen would.
func writeDataset(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.dnr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := records.NewWriter(f)
	for _, r := range gen.Movies(gen.MovieConfig{Movies: 100, Reviews: 5000, Seed: 5}) {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBuildAndQuery(t *testing.T) {
	data := writeDataset(t)
	meta := filepath.Join(t.TempDir(), "meta.em")
	if err := runBuild([]string{"-data", data, "-meta", meta, "-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(meta); err != nil || st.Size() == 0 {
		t.Fatalf("meta file not written: %v", err)
	}
	if err := runQuery([]string{"-data", data, "-sub", gen.MovieID(0), "-meta", meta, "-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
		t.Fatal(err)
	}
	// Query without a prebuilt meta rebuilds on the fly.
	if err := runQuery([]string{"-data", data, "-sub", gen.MovieID(1), "-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyze(t *testing.T) {
	data := writeDataset(t)
	for _, app := range []string{"wordcount", "histogram", "movingavg", "topk"} {
		if err := runAnalyze([]string{"-data", data, "-sub", gen.MovieID(0), "-app", app,
			"-sched", "datanet", "-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
	for _, sched := range []string{"locality", "capacity", "maxflow", "lpt"} {
		if err := runAnalyze([]string{"-data", data, "-sub", gen.MovieID(0), "-app", "wordcount",
			"-sched", sched, "-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
	}
	if err := runAnalyze([]string{"-data", data, "-sub", gen.MovieID(0), "-app", "wordcount",
		"-sched", "datanet", "-skip", "-exec", "-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyzeErrors(t *testing.T) {
	data := writeDataset(t)
	if err := runAnalyze([]string{"-data", data, "-sub", "x", "-app", "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if err := runAnalyze([]string{"-data", data, "-sub", "x", "-sched", "nope"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if err := runAnalyze([]string{"-data", data}); err == nil {
		t.Error("missing -sub accepted")
	}
	if err := runAnalyze([]string{"-sub", "x"}); err == nil {
		t.Error("missing -data accepted")
	}
}

func TestRunTop(t *testing.T) {
	data := writeDataset(t)
	if err := runTop([]string{"-data", data, "-n", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := runTop([]string{"-data", data, "-n", "99999"}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	if err := runBuild([]string{"-data", "/nonexistent/file"}); err == nil {
		t.Error("nonexistent file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.dnr")
	if err := os.WriteFile(bad, []byte("not a dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runTop([]string{"-data", bad}); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestSparklineHelper(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	if got := sparkline([]int64{1, 2, 3}); len([]rune(got)) != 3 {
		t.Errorf("sparkline = %q", got)
	}
	if got := sparkline([]int64{5, 5}); len([]rune(got)) != 2 {
		t.Errorf("flat sparkline = %q", got)
	}
}

func TestPctDiff(t *testing.T) {
	if pctDiff(110, 100) != 10 {
		t.Error("pctDiff wrong")
	}
	if pctDiff(5, 0) != 0 {
		t.Error("zero base should give 0")
	}
}

func TestRunTopMetaOnly(t *testing.T) {
	data := writeDataset(t)
	meta := filepath.Join(t.TempDir(), "meta.em")
	if err := runBuild([]string{"-data", data, "-meta", meta, "-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := runTop([]string{"-meta", meta, "-n", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := runTop([]string{"-meta", "/nonexistent.em"}); err == nil {
		t.Error("missing meta accepted")
	}
}

func TestRunVerify(t *testing.T) {
	data := writeDataset(t)
	meta := filepath.Join(t.TempDir(), "meta.em")
	if err := runBuild([]string{"-data", data, "-meta", meta, "-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-data", data, "-meta", meta, "-samples", "3",
		"-block", "32768", "-nodes", "8", "-racks", "2"}); err != nil {
		t.Fatal(err)
	}
	// A mismatched block size changes the layout: verify must refuse.
	if err := runVerify([]string{"-data", data, "-meta", meta, "-block", "8192",
		"-nodes", "8", "-racks", "2"}); err == nil {
		t.Error("layout mismatch accepted")
	}
	if err := runVerify([]string{"-data", data}); err == nil {
		t.Error("missing -meta accepted")
	}
}

func TestRunSuiteFlagValidation(t *testing.T) {
	if err := runSuite([]string{"-parallel", "0"}); err == nil {
		t.Fatal("want error for -parallel 0")
	}
}
