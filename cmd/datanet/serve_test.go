package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datanet/internal/elasticmap"
	"datanet/internal/gen"
	"datanet/internal/records"
)

// compareGolden checks output against testdata/<name>; -update (shared
// with json_test.go) rewrites.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden copy (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// The help text of both new subcommands is pinned: flag renames, default
// changes, and usage-string edits must be deliberate.
func TestServeHelpGolden(t *testing.T) {
	var buf bytes.Buffer
	f := newServeFlags()
	f.fs.SetOutput(&buf)
	f.fs.Usage()
	compareGolden(t, "serve_help.golden", buf.Bytes())
}

func TestLoadgenHelpGolden(t *testing.T) {
	var buf bytes.Buffer
	f := newLoadgenFlags()
	f.fs.SetOutput(&buf)
	f.fs.Usage()
	compareGolden(t, "loadgen_help.golden", buf.Bytes())
}

// writeEncodedMeta builds a small ElasticMap array from the generator
// corpus and writes its encoding to a temp file, as `datanet build -meta`
// would.
func writeEncodedMeta(t *testing.T) string {
	t.Helper()
	recs := gen.Movies(gen.MovieConfig{Movies: 40, Reviews: 2000, Seed: 11})
	var blocks [][]records.Record
	for i := 0; i < len(recs); i += 200 {
		end := i + 200
		if end > len(recs) {
			end = len(recs)
		}
		blocks = append(blocks, recs[i:end])
	}
	blob, err := elasticmap.Encode(elasticmap.Build(blocks, elasticmap.Options{Alpha: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "reviews.em")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeLoadgenSmoke boots a real server on a random port and runs the
// load generator against it twice with the same seed: the deterministic
// summary line (counts + order-independent digest) must be identical, and
// the second output line must report wall-clock measurements.
func TestServeLoadgenSmoke(t *testing.T) {
	meta := writeEncodedMeta(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	serveOut := &bytes.Buffer{}
	stdout = serveOut
	addrCh := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(ctx, "127.0.0.1:0", []string{"reviews=" + meta}, 64,
			func(a string) { addrCh <- a }, obsOptions{})
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-serveErr:
		t.Fatalf("serve failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}

	runOnce := func(seed int64) string {
		buf := &bytes.Buffer{}
		stdout = buf
		if err := runLoadgen([]string{"-addr", addr, "-clients", "4", "-requests", "80",
			"-seed", fmt.Sprint(seed), "-plan-nodes", "4"}); err != nil {
			t.Fatalf("loadgen: %v\n%s", err, buf)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		if len(lines) < 3 {
			t.Fatalf("loadgen printed %d lines, want summary + wall-clock + per-endpoint:\n%s", len(lines), buf)
		}
		if !strings.Contains(lines[1], "req/s") || !strings.Contains(lines[1], "latency ms") {
			t.Fatalf("second line is not the wall-clock report: %q", lines[1])
		}
		var endpoints int
		for _, l := range lines[2:] {
			if strings.HasPrefix(l, "loadgen: endpoint ") && strings.Contains(l, "p90") {
				endpoints++
			}
		}
		if endpoints == 0 {
			t.Fatalf("no per-endpoint latency lines:\n%s", buf)
		}
		return lines[0]
	}
	first := runOnce(7)
	second := runOnce(7)
	if first != second {
		t.Fatalf("summary line not reproducible for fixed seed:\n  %s\n  %s", first, second)
	}
	if !strings.Contains(first, `80 requests to "reviews" (4 clients, seed 7)`) ||
		!strings.Contains(first, "0 transport-errors") || !strings.Contains(first, "digest ") {
		t.Fatalf("unexpected summary line: %q", first)
	}

	stdout = os.Stdout
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if out := serveOut.String(); !strings.Contains(out, "serve: listening on http://") ||
		!strings.Contains(out, `serve: loaded "reviews"`) {
		t.Fatalf("unexpected serve output:\n%s", out)
	}
}

// TestServeBadMeta covers the load-time failure paths: malformed specs,
// missing files, and corrupt encodings must all refuse to start.
func TestServeBadMeta(t *testing.T) {
	ctx := context.Background()
	for _, spec := range []string{"noequals", "=path", "name="} {
		if err := serve(ctx, "127.0.0.1:0", []string{spec}, 8, nil, obsOptions{}); err == nil {
			t.Errorf("serve accepted bad -meta %q", spec)
		}
	}
	if err := serve(ctx, "127.0.0.1:0", []string{"x=" + filepath.Join(t.TempDir(), "nope.em")}, 8, nil, obsOptions{}); err == nil {
		t.Error("serve accepted a missing meta file")
	}
	corrupt := filepath.Join(t.TempDir(), "bad.em")
	if err := os.WriteFile(corrupt, []byte("not an elasticmap"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout = &bytes.Buffer{}
	defer func() { stdout = os.Stdout }()
	if err := serve(ctx, "127.0.0.1:0", []string{"x=" + corrupt}, 8, nil, obsOptions{}); err == nil {
		t.Error("serve accepted a corrupt meta file")
	}
}
