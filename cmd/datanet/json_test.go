package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datanet"
	"datanet/internal/gen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// captureStdout routes the command's stdout writer into a buffer.
func captureStdout(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prev := stdout
	stdout = &buf
	t.Cleanup(func() { stdout = prev })
	return &buf
}

func analyzeJSON(t *testing.T, data string) []byte {
	t.Helper()
	buf := captureStdout(t)
	if err := runAnalyze([]string{"-data", data, "-sub", gen.MovieID(0), "-app", "topk",
		"-sched", "datanet", "-block", "32768", "-nodes", "8", "-racks", "2", "-json"}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnalyzeJSONGolden(t *testing.T) {
	got := analyzeJSON(t, writeDataset(t))
	golden := filepath.Join("testdata", "analyze.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-json output drifted from %s (rerun with -update if intended)\ngot:\n%s", golden, got)
	}
}

func TestAnalyzeJSONShape(t *testing.T) {
	data := writeDataset(t)
	blob := analyzeJSON(t, data)
	var doc analyzeDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.App == "" || doc.Target != gen.MovieID(0) || doc.Scheduler != "datanet" {
		t.Fatalf("header = %q/%q/%q", doc.App, doc.Target, doc.Scheduler)
	}
	if doc.Result == nil || doc.Result.JobTime <= 0 {
		t.Fatalf("result = %+v", doc.Result)
	}
	if doc.Metrics == nil || doc.Metrics.Counters["events.sched.decision"] == 0 {
		t.Fatalf("metrics missing decision audit: %+v", doc.Metrics)
	}
	// Same dataset, same flags: the document is reproducible byte for byte.
	if again := analyzeJSON(t, data); !bytes.Equal(blob, again) {
		t.Error("-json output is not deterministic")
	}
}

func TestAnalyzeTraceFiles(t *testing.T) {
	data := writeDataset(t)
	dir := t.TempDir()

	jsonl := filepath.Join(dir, "run.jsonl")
	var first []byte
	for i := 0; i < 2; i++ {
		if err := runAnalyze([]string{"-data", data, "-sub", gen.MovieID(0), "-app", "wordcount",
			"-sched", "datanet", "-block", "32768", "-nodes", "8", "-racks", "2",
			"-trace", jsonl}); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = blob
			for _, line := range strings.Split(strings.TrimSpace(string(blob)), "\n") {
				var ev datanet.TraceEvent
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("bad JSONL line %q: %v", line, err)
				}
			}
		} else if !bytes.Equal(first, blob) {
			t.Error("two identical runs wrote different JSONL traces")
		}
	}

	chrome := filepath.Join(dir, "run.json")
	if err := runAnalyze([]string{"-data", data, "-sub", gen.MovieID(0), "-app", "wordcount",
		"-sched", "datanet", "-block", "32768", "-nodes", "8", "-racks", "2",
		"-trace", chrome, "-trace-format", "chrome"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &file); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	if err := runAnalyze([]string{"-data", data, "-sub", gen.MovieID(0),
		"-trace", chrome, "-trace-format", "nope"}); err == nil {
		t.Error("bad -trace-format accepted")
	}
}
