package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"datanet/internal/cluster"
	"datanet/internal/clusterd"
	"datanet/internal/detect"
	"datanet/internal/elasticmap"
	"datanet/internal/faults"
	"datanet/internal/obs"
	"datanet/internal/server"
)

// Wall-clock cluster timing: the control loop ticks every tickEvery, so
// heartbeats, suspicion sweeps and shipment delivery all advance on that
// cadence. ShipDelay is one tick — replication is asynchronous but tight.
const (
	clusterTickEvery    = 100 * time.Millisecond
	clusterHBInterval   = 0.5 // seconds
	clusterHBTimeout    = 1.5
	clusterShipDelaySec = 0.1
)

// clusterServer owns the per-node listeners of a `datanet serve -cluster`
// process: one HTTP server per cluster node, all backed by the same
// control plane, plus the wall-clock tick loop that drives heartbeats,
// failure detection and snapshot shipping.
type clusterServer struct {
	mu       sync.Mutex
	c        *clusterd.Cluster
	host     string
	pprof    bool
	handlers map[cluster.NodeID]*clusterd.Handler
	srvs     map[cluster.NodeID]*http.Server
}

// bootNode wires node id's handler to a fresh listener and registers its
// address with the control plane so /admin/topology routes to it.
func (cs *clusterServer) bootNode(id cluster.NodeID, addr string) (string, error) {
	h, err := clusterd.NewHandler(cs.c, id)
	if err != nil {
		return "", err
	}
	// New members added at runtime via /admin/addnode get their own
	// listener on an ephemeral port.
	h.OnAddNode = func(nid cluster.NodeID) {
		if _, err := cs.bootNode(nid, net.JoinHostPort(cs.host, "0")); err != nil {
			fmt.Fprintf(os.Stderr, "datanet: serve: booting added node %d: %v\n", nid, err)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	var handler http.Handler = h
	if cs.pprof {
		mux := http.NewServeMux()
		mountPprof(mux)
		mux.Handle("/", h)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	cs.c.SetAddr(id, ln.Addr().String())
	cs.mu.Lock()
	cs.handlers[id] = h
	cs.srvs[id] = srv
	cs.mu.Unlock()
	return ln.Addr().String(), nil
}

// shutdown drains in-flight appends on every node, then closes the
// listeners.
func (cs *clusterServer) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var first error
	for _, h := range cs.handlers {
		if err := h.Server().Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, srv := range cs.srvs {
		if err := srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// serveCluster is the -cluster N serving mode: the catalog is sharded
// across N nodes with K followers per shard, each node serving the same
// HTTP API behind a leadership gate, and an admin plane for topology,
// node addition and decommissioning. The first node takes the requested
// address; the rest bind ephemeral ports on the same host.
func serveCluster(ctx context.Context, addr string, metas []string, cacheSize, nodes, replicas, shards int, ready func(addr string), o obsOptions) error {
	c, err := clusterd.New(clusterd.Config{
		Shards: shards, Replicas: replicas, CacheSize: cacheSize,
		Detect: detect.Config{
			Mode: detect.Heartbeat, Interval: clusterHBInterval, Timeout: clusterHBTimeout,
		},
		ShipDelay: clusterShipDelaySec,
		Logger:    o.logger,
	}, nodes)
	if err != nil {
		return err
	}
	for _, spec := range metas {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -meta %q (want NAME=FILE)", spec)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		arr, err := elasticmap.Decode(blob)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := c.Load(name, arr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "serve: loaded %q from %s (%d blocks, shard %d)\n",
			name, path, arr.Len(), clusterd.ShardOf(name, shards))
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -addr %q: %w", addr, err)
	}
	cs := &clusterServer{
		c: c, host: host, pprof: o.pprof,
		handlers: map[cluster.NodeID]*clusterd.Handler{},
		srvs:     map[cluster.NodeID]*http.Server{},
	}
	defer cs.shutdown()
	var seedAddr string
	for i, id := range c.MemberIDs() {
		nodeAddr := net.JoinHostPort(host, "0")
		if i == 0 {
			nodeAddr = addr
		}
		bound, err := cs.bootNode(id, nodeAddr)
		if err != nil {
			return err
		}
		if i == 0 {
			seedAddr = bound
		}
		fmt.Fprintf(stdout, "serve: node %d listening on http://%s\n", id, bound)
	}
	fmt.Fprintf(stdout, "serve: cluster of %d nodes, %d shards, %d replicas per shard; topology at http://%s/admin/topology\n",
		nodes, shards, replicas, seedAddr)
	if ready != nil {
		ready(seedAddr)
	}
	start := time.Now()
	ticker := time.NewTicker(clusterTickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return cs.shutdown()
		case <-ticker.C:
			c.Tick(time.Since(start).Seconds())
		}
	}
}

// loadgenRouter resolves which node a request must hit in cluster mode
// and retries the typed 503s a failover window legally produces. In
// single-server mode (no /admin/topology) it degrades to a passthrough.
type loadgenRouter struct {
	client *http.Client
	// seed is the base URL loadgen was pointed at; always a valid place
	// to re-fetch topology from.
	seed string
	// policy reuses the engine's capped-exponential retry semantics,
	// scaled to wall-clock seconds.
	policy faults.RetryPolicy

	mu        sync.Mutex
	clustered bool
	shards    int
	primaries map[int]string // shard -> base URL of its primary
}

// newLoadgenRouter probes the target: a /admin/topology answer makes it
// shard-aware, anything else leaves it a passthrough.
func newLoadgenRouter(client *http.Client, seed string) *loadgenRouter {
	r := &loadgenRouter{
		client: client, seed: seed,
		policy: faults.RetryPolicy{MaxAttempts: 4, Backoff: 0.05, MaxDelay: 0.5},
	}
	r.refresh()
	return r
}

// refresh re-reads the shard map; it is the recovery step between
// retries, so a promoted primary is picked up mid-run.
func (r *loadgenRouter) refresh() {
	var tv clusterd.TopologyView
	if err := getJSON(r.client, r.seed+"/admin/topology", &tv); err != nil || tv.Shards == 0 {
		return
	}
	addrs := map[int]string{}
	for _, nv := range tv.Nodes {
		if nv.Addr != "" {
			addrs[nv.ID] = "http://" + nv.Addr
		}
	}
	primaries := map[int]string{}
	for _, sv := range tv.Map {
		if sv.Primary >= 0 {
			if a, ok := addrs[sv.Primary]; ok {
				primaries[sv.Shard] = a
			}
		}
	}
	r.mu.Lock()
	r.clustered, r.shards, r.primaries = true, tv.Shards, primaries
	r.mu.Unlock()
}

// Clustered reports whether the target is a cluster.
func (r *loadgenRouter) Clustered() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clustered
}

// baseFor returns the base URL serving array name right now.
func (r *loadgenRouter) baseFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.clustered {
		return r.seed
	}
	if base, ok := r.primaries[clusterd.ShardOf(name, r.shards)]; ok {
		return base
	}
	return r.seed
}

// do executes one loadgen request against whichever node currently
// serves the array, retrying the typed failover 503s with the capped
// exponential backoff of faults.RetryPolicy (refreshing the shard map
// between attempts so a promoted primary is found). Each attempt carries
// the request ID and attempt number, so server-side spans correlate with
// the loadgen mix and count retries. The returned status and body are
// the final exchange — what the digest should hash; retryKinds lists the
// typed-503 kind behind each retry, for the retries-by-kind report.
func (r *loadgenRouter) do(hc *http.Client, q genRequest, name string) (status int, body []byte, retryKinds []string, err error) {
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(q.method, r.baseFor(name)+q.path, bytes.NewReader(q.body))
		if err != nil {
			return 0, nil, retryKinds, err
		}
		if q.id != "" {
			req.Header.Set(obs.RequestIDHeader, q.id)
			req.Header.Set(obs.AttemptHeader, strconv.Itoa(attempt))
		}
		resp, err := hc.Do(req)
		if err != nil {
			return 0, nil, retryKinds, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return 0, nil, retryKinds, rerr
		}
		if kind, ok := retryable503(resp.StatusCode, body); ok && attempt < r.policy.MaxAttempts {
			retryKinds = append(retryKinds, kind)
			time.Sleep(time.Duration(r.policy.Delay(attempt) * float64(time.Second)))
			r.refresh()
			continue
		}
		return resp.StatusCode, body, retryKinds, nil
	}
}

// retryable503 reports whether a response is a typed failover-window 503
// worth retrying after a topology refresh, and which kind it was.
func retryable503(status int, body []byte) (string, bool) {
	if status != http.StatusServiceUnavailable {
		return "", false
	}
	var eb server.ErrorBody
	if json.Unmarshal(body, &eb) != nil {
		return "", false
	}
	switch eb.Kind {
	case "not_leader", "no_leader", "node_down", "draining", "not_ready":
		return eb.Kind, true
	}
	return "", false
}

// clusterCatalog unions the per-node catalogs (each node lists only the
// shards it leads) into one sorted name list.
func clusterCatalog(client *http.Client, seed string) ([]string, error) {
	var tv clusterd.TopologyView
	if err := getJSON(client, seed+"/admin/topology", &tv); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, nv := range tv.Nodes {
		if nv.Addr == "" {
			continue
		}
		var catalog struct {
			Arrays []struct {
				Name string `json:"name"`
			} `json:"arrays"`
		}
		if err := getJSON(client, "http://"+nv.Addr+"/v1/arrays", &catalog); err != nil {
			continue // a node mid-failover is not a listing failure
		}
		for _, a := range catalog.Arrays {
			seen[a.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
