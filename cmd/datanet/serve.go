package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	nhpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	rtpprof "runtime/pprof"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"datanet/internal/elasticmap"
	"datanet/internal/hashutil"
	"datanet/internal/metrics"
	"datanet/internal/obs"
	"datanet/internal/server"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// serveFlags holds the serve flag set; split out so tests can golden the
// help text without the ExitOnError parse path terminating the process.
type serveFlags struct {
	fs       *flag.FlagSet
	addr     *string
	cache    *int
	cluster  *int
	logLevel *string
	pprof    *bool
	replicas *int
	shards   *int
	metas    multiFlag
}

func newServeFlags() *serveFlags {
	f := &serveFlags{fs: flag.NewFlagSet("serve", flag.ExitOnError)}
	f.addr = f.fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	f.cache = f.fs.Int("cache", server.DefaultCacheSize, "per-epoch result-cache entries per array")
	f.cluster = f.fs.Int("cluster", 0, "serve as an N-node sharded cluster instead of a single process (0 = single)")
	f.logLevel = f.fs.String("log-level", "off", "structured request/event log to stderr: off | debug | info | warn | error")
	f.pprof = f.fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on every node")
	f.replicas = f.fs.Int("replicas", 1, "followers per shard in cluster mode")
	f.shards = f.fs.Int("shards", 4, "catalog shards in cluster mode")
	f.fs.Var(&f.metas, "meta", "NAME=FILE: serve the encoded ElasticMap array FILE as NAME (repeatable)")
	return f
}

// obsOptions carries the serving observability knobs. The zero value —
// no logger, no pprof — is the deterministic default the loadgen/chaos
// goldens rely on; tracing itself is always on (bounded ring, wall-clock
// only, invisible to response bodies).
type obsOptions struct {
	logger *slog.Logger
	pprof  bool
}

// runServe loads encoded ElasticMap arrays and serves the metadata query
// API until interrupted.
func runServe(args []string) error {
	f := newServeFlags()
	f.fs.Parse(args)
	if len(f.metas) == 0 {
		return fmt.Errorf("at least one -meta NAME=FILE is required")
	}
	logger, err := obs.NewLogger(*f.logLevel, os.Stderr)
	if err != nil {
		return err
	}
	o := obsOptions{logger: logger, pprof: *f.pprof}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *f.cluster > 0 {
		return serveCluster(ctx, *f.addr, f.metas, *f.cache, *f.cluster, *f.replicas, *f.shards, nil, o)
	}
	return serve(ctx, *f.addr, f.metas, *f.cache, nil, o)
}

// mountPprof exposes the standard net/http/pprof handlers on mux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", nhpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
}

// serve is the signal-free core of runServe: it blocks until ctx is
// canceled or the listener fails. Tests pass a cancelable ctx and a ready
// hook to learn the bound address when -addr ends in :0.
func serve(ctx context.Context, addr string, metas []string, cacheSize int, ready func(addr string), o obsOptions) error {
	store := server.NewStore(cacheSize)
	for _, spec := range metas {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -meta %q (want NAME=FILE)", spec)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		arr, err := elasticmap.Decode(blob)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		sn := store.Put(name, arr)
		fmt.Fprintf(stdout, "serve: loaded %q from %s (%d blocks, %d raw bytes, epoch %d)\n",
			name, path, arr.Len(), arr.RawBytes(), sn.Epoch)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serve: listening on http://%s (%d arrays)\n", ln.Addr(), store.Len())
	if ready != nil {
		ready(ln.Addr().String())
	}
	// Observability plane: every request flows through the tracing
	// middleware into the API server; the admin routes (span dumps, the
	// Prometheus view without runtime gauges, optional pprof) bypass it so
	// scraping never perturbs the numbers being scraped.
	api := server.New(store)
	tracer := obs.NewTracer(obs.DefaultRingSize, obs.DefaultSlowK)
	mux := http.NewServeMux()
	mux.Handle("/admin/trace", obs.TraceHandler(tracer))
	mux.HandleFunc("/admin/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		w.Write(server.RenderProm(api.DumpMetrics(), false))
	})
	if o.pprof {
		mountPprof(mux)
	}
	mux.Handle("/", obs.Middleware(tracer, -1, o.logger, api))
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shctx)
	case err := <-errc:
		return err
	}
}

// genRequest is one pre-generated loadgen request. The whole request list
// is derived from -seed before any client starts, so the mix — and, since
// the API is read-only and snapshot-consistent, every response — is a pure
// function of the seed. kind labels the endpoint for the per-endpoint
// latency report; id is the request ID the router stamps on the wire.
type genRequest struct {
	method string
	path   string
	body   []byte
	kind   string
	id     string
}

// loadgenKinds is the fixed reporting order of the per-endpoint lines.
var loadgenKinds = []string{"estimate", "distribution", "top", "info", "plan"}

// loadgenFlags holds the loadgen flag set (see serveFlags).
type loadgenFlags struct {
	fs        *flag.FlagSet
	addr      *string
	array     *string
	clients   *int
	profile   *string
	requests  *int
	seed      *int64
	planNodes *int
}

func newLoadgenFlags() *loadgenFlags {
	f := &loadgenFlags{fs: flag.NewFlagSet("loadgen", flag.ExitOnError)}
	f.addr = f.fs.String("addr", "127.0.0.1:8080", "server address host:port")
	f.array = f.fs.String("array", "", "array to query (default: first name in the server catalog)")
	f.clients = f.fs.Int("clients", 8, "concurrent client goroutines")
	f.profile = f.fs.String("profile", "", "cpu=FILE or heap=FILE: write a pprof profile of the loadgen run")
	f.requests = f.fs.Int("requests", 1000, "total requests across all clients")
	f.seed = f.fs.Int64("seed", 1, "query-mix seed; the summary line is a pure function of it")
	f.planNodes = f.fs.Int("plan-nodes", 8, "cluster size used by generated plan requests")
	return f
}

// startProfile interprets -profile: "cpu=FILE" profiles the whole run,
// "heap=FILE" snapshots the heap after it. stop runs once the run ends.
func startProfile(spec string) (stop func() error, err error) {
	mode, path, ok := strings.Cut(spec, "=")
	if !ok || path == "" {
		return nil, fmt.Errorf("bad -profile %q (want cpu=FILE or heap=FILE)", spec)
	}
	switch mode {
	case "cpu":
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := rtpprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		return func() error {
			rtpprof.StopCPUProfile()
			return f.Close()
		}, nil
	case "heap":
		return func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := rtpprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}, nil
	}
	return nil, fmt.Errorf("unknown -profile mode %q (want cpu or heap)", mode)
}

// runLoadgen fires a seeded query mix at a running serve instance from N
// concurrent clients and reports a deterministic summary line (counts plus
// an order-independent digest of every request/response pair) followed by
// wall-clock throughput and a latency histogram.
func runLoadgen(args []string) error {
	f := newLoadgenFlags()
	f.fs.Parse(args)
	if *f.clients < 1 || *f.requests < 1 {
		return fmt.Errorf("-clients and -requests must be at least 1")
	}
	clients, requests, seed, planNodes := f.clients, f.requests, f.seed, f.planNodes
	base := "http://" + *f.addr
	client := &http.Client{Timeout: 30 * time.Second}
	// The router probes /admin/topology: against `serve -cluster` it
	// shard-routes every request to the array's primary and retries the
	// typed failover 503s; against a single server it is a passthrough.
	router := newLoadgenRouter(client, base)

	name := *f.array
	if name == "" {
		var names []string
		if router.Clustered() {
			// Per-node listings only cover led shards; union them.
			var err error
			if names, err = clusterCatalog(client, base); err != nil {
				return fmt.Errorf("listing cluster arrays: %w", err)
			}
		} else {
			var catalog struct {
				Arrays []struct {
					Name string `json:"name"`
				} `json:"arrays"`
			}
			if err := getJSON(client, base+"/v1/arrays", &catalog); err != nil {
				return fmt.Errorf("listing arrays: %w", err)
			}
			for _, a := range catalog.Arrays {
				names = append(names, a.Name)
			}
		}
		if len(names) == 0 {
			return fmt.Errorf("server at %s has no arrays", *f.addr)
		}
		name = names[0]
	}
	// Seed the sub-dataset pool from the server's own index so the mix
	// queries real keys; unknown keys are mixed in deliberately below.
	var top struct {
		Entries []struct {
			Sub string `json:"sub"`
		} `json:"entries"`
	}
	if err := getJSON(client, router.baseFor(name)+"/v1/arrays/"+name+"/top?n=64", &top); err != nil {
		return fmt.Errorf("fetching sub-dataset pool: %w", err)
	}
	subs := make([]string, 0, len(top.Entries))
	for _, e := range top.Entries {
		subs = append(subs, e.Sub)
	}
	if len(subs) == 0 {
		subs = []string{"loadgen-empty-pool"}
	}

	reqs := generateMix(rand.New(rand.NewSource(*seed)), name, subs, *requests, *planNodes)
	// Request IDs propagate end to end (X-Datanet-Request-Id): a span in
	// any node's /admin/trace names the loadgen request that caused it.
	for i := range reqs {
		reqs[i].id = fmt.Sprintf("lg%d-%04d", *seed, i)
	}

	var stopProfile func() error
	if *f.profile != "" {
		var err error
		if stopProfile, err = startProfile(*f.profile); err != nil {
			return err
		}
	}

	type clientStats struct {
		digest     uint64
		ok         int
		httpErr    int
		transport  int
		retries    int
		lat        *metrics.Histogram
		perKind    map[string]*metrics.Histogram
		retryKinds map[string]int
	}
	stats := make([]clientStats, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.lat = metrics.NewHistogram()
			st.perKind = map[string]*metrics.Histogram{}
			st.retryKinds = map[string]int{}
			hc := &http.Client{Timeout: 30 * time.Second}
			for i := c; i < len(reqs); i += *clients {
				q := reqs[i]
				t0 := time.Now()
				status, body, retryKinds, err := router.do(hc, q, name)
				if err != nil {
					st.transport++
					continue
				}
				ms := float64(time.Since(t0).Microseconds()) / 1e3
				st.lat.Observe(ms)
				kh := st.perKind[q.kind]
				if kh == nil {
					kh = metrics.NewHistogram()
					st.perKind[q.kind] = kh
				}
				kh.Observe(ms)
				st.retries += len(retryKinds)
				for _, k := range retryKinds {
					st.retryKinds[k]++
				}
				if status < 300 {
					st.ok++
				} else {
					st.httpErr++
				}
				// Commutative digest: summing per-exchange FNV-64a hashes
				// makes the result independent of client interleaving. Each
				// request is hashed once, with its final (post-retry) answer.
				h := hashutil.New()
				fmt.Fprintf(h, "%s %s\x00%d\x00", q.method, q.path, status)
				h.Write(q.body)
				h.Write([]byte{0})
				h.Write(body)
				st.digest += h.Sum64()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if stopProfile != nil {
		if err := stopProfile(); err != nil {
			return err
		}
	}

	var digest uint64
	var ok, httpErr, transport, retried int
	lat := metrics.NewHistogram()
	perKind := map[string]*metrics.Histogram{}
	retryKinds := map[string]int{}
	for i := range stats {
		digest += stats[i].digest
		ok += stats[i].ok
		httpErr += stats[i].httpErr
		transport += stats[i].transport
		retried += stats[i].retries
		lat.Merge(stats[i].lat)
		for k, h := range stats[i].perKind {
			if perKind[k] == nil {
				perKind[k] = metrics.NewHistogram()
			}
			perKind[k].Merge(h)
		}
		for k, n := range stats[i].retryKinds {
			retryKinds[k] += n
		}
	}
	// Deterministic line first (compared across runs by tests), wall-clock
	// measurements second. Retries are wall-clock noise (failover windows),
	// so they live on the second line.
	fmt.Fprintf(stdout, "loadgen: %d requests to %q (%d clients, seed %d): %d ok, %d http-errors, %d transport-errors, digest %016x\n",
		len(reqs), name, *clients, *seed, ok, httpErr, transport, digest)
	fmt.Fprintf(stdout, "loadgen: wall %.2fs, %.0f req/s, %d retries; latency ms p50 %.3f p95 %.3f p99 %.3f max %.3f\n",
		wall.Seconds(), float64(len(reqs))/wall.Seconds(), retried,
		lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99), lat.Max())
	for _, k := range loadgenKinds {
		h := perKind[k]
		if h == nil || h.Count() == 0 {
			continue
		}
		fmt.Fprintf(stdout, "loadgen: endpoint %s: %d reqs; latency ms p50 %.3f p90 %.3f p99 %.3f max %.3f\n",
			k, h.Count(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max())
	}
	if len(retryKinds) > 0 {
		kinds := make([]string, 0, len(retryKinds))
		for k := range retryKinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s=%d", k, retryKinds[k]))
		}
		fmt.Fprintf(stdout, "loadgen: retries by kind: %s\n", strings.Join(parts, " "))
	}
	if *f.profile != "" {
		mode, path, _ := strings.Cut(*f.profile, "=")
		fmt.Fprintf(stdout, "loadgen: %s profile written to %s\n", mode, path)
	}
	if transport > 0 {
		return fmt.Errorf("loadgen: %d transport errors", transport)
	}
	return nil
}

// generateMix pre-computes the request list: mostly estimates and
// distributions on real sub-datasets, some meta-only analytics, some full
// scheduling plans, and a sprinkle of unknown keys and malformed requests
// to keep the 4xx paths warm.
func generateMix(rng *rand.Rand, name string, subs []string, n, planNodes int) []genRequest {
	prefix := "/v1/arrays/" + name
	schedulers := []string{"datanet", "maxflow", "locality", "lpt"}
	reqs := make([]genRequest, 0, n)
	for i := 0; i < n; i++ {
		sub := subs[rng.Intn(len(subs))]
		switch p := rng.Intn(100); {
		case p < 35:
			reqs = append(reqs, genRequest{method: "GET", path: prefix + "/estimate?sub=" + sub, kind: "estimate"})
		case p < 60:
			reqs = append(reqs, genRequest{method: "GET", path: prefix + "/distribution?sub=" + sub, kind: "distribution"})
		case p < 72:
			reqs = append(reqs, genRequest{method: "GET", path: fmt.Sprintf("%s/top?n=%d", prefix, 1+rng.Intn(16)), kind: "top"})
		case p < 80:
			reqs = append(reqs, genRequest{method: "GET", path: prefix, kind: "info"})
		case p < 90:
			body, _ := json.Marshal(map[string]any{
				"sub":       sub,
				"nodes":     planNodes,
				"scheduler": schedulers[rng.Intn(len(schedulers))],
			})
			reqs = append(reqs, genRequest{method: "POST", path: prefix + "/plan", body: body, kind: "plan"})
		case p < 96:
			reqs = append(reqs, genRequest{method: "GET",
				path: fmt.Sprintf("%s/estimate?sub=loadgen-missing-%d", prefix, rng.Intn(1000)), kind: "estimate"})
		default:
			// Deliberately malformed: missing sub parameter → 400.
			reqs = append(reqs, genRequest{method: "GET", path: prefix + "/estimate", kind: "estimate"})
		}
	}
	return reqs
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	return json.Unmarshal(body, out)
}
