// Command datanet drives the library end to end on a dataset file produced
// by cmd/datagen: it lays the records out on a simulated HDFS cluster,
// builds ElasticMap meta-data (optionally persisting it), answers
// sub-dataset distribution queries, and runs analysis jobs under either
// scheduler.
//
// Subcommands:
//
//	datanet build   -data reviews.dnr -meta reviews.em [-alpha 0.3] [-block 256KiB] [-nodes 32]
//	datanet query   -data reviews.dnr -sub movie-00000 [-meta reviews.em]
//	datanet analyze -data reviews.dnr -sub movie-00000 -app wordcount [-sched datanet]
//	datanet top     -data reviews.dnr [-n 10]
//	datanet suite   [-parallel N] [-json-bench BENCH_suite.json]
//	datanet chaos   [-runs 200] [-seed 1] [-detect heartbeat] [-mitigate speculative] [-shrink]
//	datanet chaos   -cluster 4 -replicas 2 [-runs 200] [-seed 1]
//	datanet serve   -meta reviews=reviews.em [-addr 127.0.0.1:8080] [-cache 1024]
//	datanet serve   -meta reviews=reviews.em -cluster 3 -replicas 2 [-shards 4]
//	datanet loadgen -addr 127.0.0.1:8080 [-clients 8] [-requests 1000] [-seed 1]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"datanet"
	"datanet/internal/chaos"
	"datanet/internal/elasticmap"
	"datanet/internal/experiments"
	"datanet/internal/metrics"
	"datanet/internal/records"
)

// stdout is swapped by tests to capture machine-readable output.
var stdout io.Writer = os.Stdout

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = runBuild(args)
	case "query":
		err = runQuery(args)
	case "analyze":
		err = runAnalyze(args)
	case "top":
		err = runTop(args)
	case "verify":
		err = runVerify(args)
	case "suite":
		err = runSuite(args)
	case "chaos":
		err = runChaos(args)
	case "serve":
		err = runServe(args)
	case "loadgen":
		err = runLoadgen(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datanet:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: datanet <build|query|analyze|top|verify|suite|chaos|serve|loadgen> [flags]
  build   -data FILE -meta OUT [-alpha A] [-block BYTES] [-nodes N]
  query   -data FILE -sub KEY [-meta FILE]
  analyze -data FILE -sub KEY -app NAME [-join-sub KEY] [-sched locality|datanet|maxflow|lpt] [-skip]
          [-meta FILE] [-crash N@T[:REJOIN],...] [-slow NxF,...] [-readerr P] [-retries N]
          [-detect oracle|heartbeat|phi] [-hb-interval S] [-hb-timeout S]
          [-speculate [-spec-quantile Q]] [-coded RATE]  (straggler mitigation)
          [-partition off|hash|skew|range]  (key-aware reduce partitioning)
          [-rebalance off|hotspot|anneal|both [-rebalance-ticks N]]
          [-trace OUT [-trace-format jsonl|chrome]] [-json]
  top     -data FILE [-n N] | -meta FILE [-n N]
  verify  -data FILE -meta FILE [-samples N]
  suite   [-parallel N] [-json-bench FILE]
  chaos   [-runs N] [-seed S] [-detect heartbeat|phi|oracle] [-shrink]
          [-rebalance off|hotspot|anneal|both]  (no-lost-blocks invariant)
          [-mitigate off|speculative|coded]  (mitigation invariants)
          [-partition off|hash|skew|range|rotate]  (partition-independence invariant)
          [-cluster N [-replicas K] [-shards S]]  (sharded-cluster invariants)
  serve   -meta NAME=FILE [-meta NAME=FILE ...] [-addr HOST:PORT] [-cache N]
          [-cluster N [-replicas K] [-shards S]]  (sharded, replicated serving)
          [-log-level off|debug|info|warn|error] [-pprof]
          (Prometheus /metrics per node, cluster rollup + span dumps under /admin)
  loadgen [-addr HOST:PORT] [-array NAME] [-clients N] [-requests N] [-seed S]
          [-profile cpu=FILE|heap=FILE]
          (shard-routes and retries typed 503s automatically against a cluster)`)
	os.Exit(2)
}

// commonFlags registers the flags every subcommand shares and returns a
// loader that materializes the cluster + filesystem.
type common struct {
	fs     *flag.FlagSet
	data   *string
	block  *int64
	nodes  *int
	racks  *int
	seed   *int64
	loaded []records.Record
}

func newCommon(name string) *common {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &common{
		fs:    fs,
		data:  fs.String("data", "", "dataset file from cmd/datagen"),
		block: fs.Int64("block", 256<<10, "HDFS block size in bytes"),
		nodes: fs.Int("nodes", 32, "cluster size"),
		racks: fs.Int("racks", 4, "rack count"),
		seed:  fs.Int64("seed", 1, "placement seed"),
	}
}

func (c *common) load() (*datanet.FileSystem, error) {
	if *c.data == "" {
		return nil, fmt.Errorf("-data is required")
	}
	f, err := os.Open(*c.data)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := records.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	c.loaded = recs
	topo := datanet.NewScaledCluster(*c.nodes, *c.racks, *c.block)
	hfs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: *c.block, Seed: *c.seed})
	if err != nil {
		return nil, err
	}
	if _, err := hfs.Write("data", recs); err != nil {
		return nil, err
	}
	return hfs, nil
}

func runBuild(args []string) error {
	c := newCommon("build")
	metaOut := c.fs.String("meta", "", "output path for the encoded ElasticMap array")
	alpha := c.fs.Float64("alpha", 0.3, "hash-map share α")
	c.fs.Parse(args)
	hfs, err := c.load()
	if err != nil {
		return err
	}
	meta, err := datanet.BuildMeta(hfs, "data", datanet.MetaOptions{Alpha: *alpha})
	if err != nil {
		return err
	}
	info, _ := hfs.Stat("data")
	fmt.Printf("dataset: %d records, %d blocks\n", info.Records, len(info.Blocks))
	fmt.Printf("meta-data: %d bytes (raw/meta ratio %.0f, realized α %.1f%%)\n",
		meta.MemoryBytes(), meta.Array().RepresentationRatio(), meta.Array().MeanAlpha()*100)
	if *metaOut != "" {
		blob, err := meta.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metaOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("encoded meta-data written to %s (%d bytes)\n", *metaOut, len(blob))
	}
	return nil
}

func runQuery(args []string) error {
	c := newCommon("query")
	sub := c.fs.String("sub", "", "sub-dataset key")
	metaIn := c.fs.String("meta", "", "reuse an encoded ElasticMap array")
	alpha := c.fs.Float64("alpha", 0.3, "hash-map share α when building fresh")
	c.fs.Parse(args)
	if *sub == "" {
		return fmt.Errorf("-sub is required")
	}
	hfs, err := c.load()
	if err != nil {
		return err
	}
	var meta *datanet.Meta
	if *metaIn != "" {
		blob, err := os.ReadFile(*metaIn)
		if err != nil {
			return err
		}
		if meta, err = datanet.DecodeMeta(blob, "data"); err != nil {
			return err
		}
	} else if meta, err = datanet.BuildMeta(hfs, "data", datanet.MetaOptions{Alpha: *alpha}); err != nil {
		return err
	}
	est := meta.Estimate(*sub)
	truthDist, err := hfs.SubDistribution("data", *sub)
	if err != nil {
		return err
	}
	var truth int64
	for _, b := range truthDist {
		truth += b
	}
	fmt.Printf("sub-dataset %q\n", *sub)
	fmt.Printf("  estimated size: %d bytes (truth %d, %+.1f%%)\n",
		est, truth, pctDiff(est, truth))
	weights := meta.Weights(*sub)
	nonzero := 0
	for _, w := range weights {
		if w > 0 {
			nonzero++
		}
	}
	fmt.Printf("  present in %d of %d blocks per meta-data\n", nonzero, len(weights))
	fmt.Printf("  per-block distribution (bytes): %s\n", sparkline(weights))
	return nil
}

func runAnalyze(args []string) error {
	c := newCommon("analyze")
	sub := c.fs.String("sub", "", "sub-dataset key")
	appName := c.fs.String("app", "wordcount", "wordcount | histogram | movingavg | topk | sort | join")
	joinSub := c.fs.String("join-sub", "", "build-side sub-dataset key for -app join (its windows come from the meta-data distribution)")
	schedName := c.fs.String("sched", "datanet", "locality | datanet | capacity | maxflow | lpt")
	skip := c.fs.Bool("skip", false, "skip blocks proven empty of the target")
	execute := c.fs.Bool("exec", false, "execute the application and print the top output pairs")
	alpha := c.fs.Float64("alpha", 0.3, "hash-map share α")
	metaIn := c.fs.String("meta", "", "reuse an encoded ElasticMap array (corrupt file degrades to locality)")
	crashSpec := c.fs.String("crash", "", "inject crashes: N@T[:REJOIN],... (node N dies at T s, optionally rejoins)")
	slowSpec := c.fs.String("slow", "", "degrade nodes: NxF,... (node N runs at factor F of full speed)")
	readErr := c.fs.Float64("readerr", 0, "transient block-read failure probability per attempt")
	retries := c.fs.Int("retries", 0, "max attempts per task under faults (0 = default 4)")
	faultSeed := c.fs.Int64("faultseed", 1, "seed for deterministic transient errors")
	detectMode := c.fs.String("detect", "oracle", "failure detector: oracle | heartbeat | phi")
	hbInterval := c.fs.Float64("hb-interval", 0, "heartbeat interval in simulated seconds (0 = default 0.5)")
	hbTimeout := c.fs.Float64("hb-timeout", 0, "suspicion timeout in simulated seconds (0 = 3 × interval)")
	speculate := c.fs.Bool("speculate", false, "launch budgeted backup attempts for tasks projected past the completion quantile")
	specQuantile := c.fs.Float64("spec-quantile", 0.9, "speculation trigger quantile in (0,1), used with -speculate")
	coded := c.fs.Float64("coded", 0, "coded k-of-n execution at this rate k/n in (0,1) (0 = off; e.g. 0.7)")
	partitionMode := c.fs.String("partition", "off", "key-aware reduce partitioning: off | hash | skew | range")
	rebalance := c.fs.String("rebalance", "off", "distribution-aware replica rebalancing before the run: off | hotspot | anneal | both")
	rebalanceTicks := c.fs.Int("rebalance-ticks", 2, "maintenance ticks to run when -rebalance is enabled")
	traceOut := c.fs.String("trace", "", "write the run's event timeline to this file")
	traceFormat := c.fs.String("trace-format", "jsonl", "timeline format: jsonl | chrome (Perfetto / chrome://tracing)")
	jsonOut := c.fs.Bool("json", false, "emit a machine-readable JSON document (result + metrics) instead of text")
	c.fs.Parse(args)
	if *traceFormat != "jsonl" && *traceFormat != "chrome" {
		return fmt.Errorf("unknown -trace-format %q (want jsonl or chrome)", *traceFormat)
	}
	if *sub == "" {
		return fmt.Errorf("-sub is required")
	}
	hfs, err := c.load()
	if err != nil {
		return err
	}
	var app datanet.App
	switch *appName {
	case "wordcount":
		app = datanet.WordCount()
	case "histogram":
		app = datanet.WordHistogram()
	case "movingavg":
		app = datanet.MovingAverage(86400)
	case "topk":
		app = datanet.TopKSearch(10, "plot twist ending amazing director")
	case "sort":
		app = datanet.DistributedSort()
	case "join":
		// Resolved below: the build side needs the meta-data distribution.
		if *joinSub == "" {
			return fmt.Errorf("-app join requires -join-sub")
		}
	default:
		return fmt.Errorf("unknown app %q", *appName)
	}
	var schedID datanet.Scheduler
	switch *schedName {
	case "locality":
		schedID = datanet.SchedulerLocality
	case "datanet":
		schedID = datanet.SchedulerDataNet
	case "capacity":
		schedID = datanet.SchedulerCapacityAware
	case "maxflow":
		schedID = datanet.SchedulerMaxFlow
	case "lpt":
		schedID = datanet.SchedulerLPT
	default:
		return fmt.Errorf("unknown scheduler %q", *schedName)
	}
	var meta *datanet.Meta
	var metaErr error
	if schedID != datanet.SchedulerLocality {
		if *metaIn != "" {
			// Lenient load: a corrupt ElasticMap file demotes the job to
			// the locality baseline instead of aborting the analysis.
			blob, err := os.ReadFile(*metaIn)
			if err != nil {
				return err
			}
			if meta, err = datanet.DecodeMeta(blob, "data"); err != nil {
				if !errors.Is(err, elasticmap.ErrCodec) {
					return err
				}
				fmt.Fprintf(os.Stderr, "datanet: warning: %v — falling back to locality scheduling\n", err)
				meta, metaErr = nil, err
			}
		} else if meta, err = datanet.BuildMeta(hfs, "data", datanet.MetaOptions{Alpha: *alpha}); err != nil {
			return err
		}
	}
	if *appName == "join" {
		// The build side comes from the second sub-dataset's ElasticMap
		// distribution — the meta-data prunes the build scan.
		if meta == nil {
			if meta, err = datanet.BuildMeta(hfs, "data", datanet.MetaOptions{Alpha: *alpha}); err != nil {
				return err
			}
		}
		build, err := datanet.BuildJoinSide(hfs, "data", meta, *joinSub, 86400)
		if err != nil {
			return err
		}
		app = datanet.SubDatasetJoin(*joinSub, 86400, build)
	}
	plan, err := parseFaultPlan(*crashSpec, *slowSpec, *readErr, *faultSeed)
	if err != nil {
		return err
	}
	rebalanceMode, err := datanet.ParseRebalanceMode(*rebalance)
	if err != nil {
		return err
	}
	var rebalanceStats datanet.RebalanceStats
	if rebalanceMode != datanet.RebalanceOff {
		// Pre-run maintenance: let the distribution-aware rebalancer move
		// replicas toward the queried sub-dataset's heat before the job is
		// scheduled. The heat profile needs meta-data, which the locality
		// scheduler otherwise skips building.
		if meta == nil {
			if meta, err = datanet.BuildMeta(hfs, "data", datanet.MetaOptions{Alpha: *alpha}); err != nil {
				return err
			}
		}
		rb := datanet.NewRebalancer(hfs, datanet.RebalancerConfig{Mode: rebalanceMode, AnnealSeed: *faultSeed})
		if err := rb.ObserveProfile("data", meta.HeatProfile(*sub)); err != nil {
			return err
		}
		for i := 0; i < *rebalanceTicks; i++ {
			if _, err := rb.Tick(float64(i)); err != nil {
				return err
			}
		}
		rebalanceStats = rb.Stats()
	}
	mode, err := datanet.ParseDetectorMode(*detectMode)
	if err != nil {
		return err
	}
	detCfg := datanet.DetectorConfig{Mode: mode, Interval: *hbInterval, Timeout: *hbTimeout}
	var mit *datanet.MitigationConfig
	switch {
	case *speculate && *coded > 0:
		return fmt.Errorf("-speculate and -coded are mutually exclusive")
	case *speculate:
		mit = &datanet.MitigationConfig{Mode: datanet.MitigateSpeculative, Quantile: *specQuantile}
	case *coded > 0:
		mit = &datanet.MitigationConfig{Mode: datanet.MitigateCoded, Rate: *coded}
	}
	partMode, err := datanet.ParsePartitionMode(*partitionMode)
	if err != nil {
		return err
	}
	var part *datanet.PartitionConfig
	if partMode != datanet.PartitionOff {
		part = &datanet.PartitionConfig{Mode: partMode, Seed: *faultSeed}
	}
	var rec *datanet.Trace
	if *traceOut != "" || *jsonOut {
		rec = datanet.NewTrace()
	}
	res, err := datanet.Job{
		FS: hfs, File: "data", Target: *sub,
		App: app, Scheduler: schedID, Meta: meta, MetaErr: metaErr,
		SkipEmpty: *skip, Execute: *execute,
		Faults: plan, Retry: datanet.RetryPolicy{MaxAttempts: *retries},
		Detect: detCfg, Mitigate: mit, Partition: part,
		Trace: rec,
	}.Run()
	if err != nil {
		return err
	}
	if *traceOut != "" {
		if err := writeTrace(rec, *traceOut, *traceFormat); err != nil {
			return err
		}
	}
	if *jsonOut {
		doc := analyzeDoc{
			App: app.Name(), Target: *sub, Scheduler: res.SchedulerName,
			Result: res, Metrics: rec.Snapshot(),
		}
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		_, err = stdout.Write(enc)
		return err
	}
	fmt.Printf("%s on %q with %s scheduling\n", app.Name(), *sub, res.SchedulerName)
	fmt.Printf("  filter phase:   %8.2f s (%d local, %d remote, %d skipped)\n",
		res.FilterEnd, res.LocalTasks, res.RemoteTasks, res.SkippedBlocks)
	fmt.Printf("  analysis job:   %8.2f s\n", res.AnalysisTime)
	if rebalanceMode != datanet.RebalanceOff {
		fmt.Printf("  rebalance:      %d moves, %s shipped in %d ticks (%s)\n",
			rebalanceStats.Moves, metrics.Bytes(rebalanceStats.BytesMoved), rebalanceStats.Ticks, rebalanceMode)
	}
	fmt.Printf("  total makespan: %8.2f s\n", res.JobTime)
	if res.NodeCrashes > 0 || res.TasksRetried > 0 || res.TransientErrors > 0 {
		fmt.Printf("  fault handling: %d node crashes, %d tasks retried, %d transient read errors, %d outputs lost, %d replicas repaired\n",
			res.NodeCrashes, res.TasksRetried, res.TransientErrors, res.LostOutputs, res.ReplicasRepaired)
	}
	if len(res.DetectionLatency) > 0 || res.FalseSuspicions > 0 || res.DuplicateKills > 0 {
		var sum, max float64
		for _, l := range res.DetectionLatency {
			sum += l
			if l > max {
				max = l
			}
		}
		mean := 0.0
		if len(res.DetectionLatency) > 0 {
			mean = sum / float64(len(res.DetectionLatency))
		}
		fmt.Printf("  failure detection: %d responses (mean %.2f s, max %.2f s), %d false suspicions, %d duplicate kills\n",
			len(res.DetectionLatency), mean, max, res.FalseSuspicions, res.DuplicateKills)
	}
	if mit != nil && mit.Mode == datanet.MitigateSpeculative {
		fmt.Printf("  speculation: %d backups launched (quantile %.2f), %d won, %s of duplicate work\n",
			res.SpeculativeLaunches, *specQuantile, res.SpeculativeWins, metrics.Seconds(res.WastedTaskSeconds))
	}
	if mit != nil && mit.Mode == datanet.MitigateCoded {
		fmt.Printf("  coded execution: %d groups + %d parity tasks (rate %.2f), %d decodes rebuilt %s\n",
			res.CodedGroups, res.CodedParityUnits, *coded, res.CodedDecodes, metrics.Bytes(res.CodedDecodedBytes))
	}
	if res.PartitionName != "" {
		var maxLoad, total int64
		for _, l := range res.PartitionLoads {
			total += l
			if l > maxLoad {
				maxLoad = l
			}
		}
		mean := int64(0)
		if n := len(res.PartitionLoads); n > 0 {
			mean = total / int64(n)
		}
		fmt.Printf("  partitioning: %s over %d reducers (%d split keys, max/mean load %s/%s)\n",
			res.PartitionName, len(res.PartitionLoads), res.PartitionSplitKeys,
			metrics.Bytes(maxLoad), metrics.Bytes(mean))
	}
	if res.MetadataFallback {
		fmt.Printf("  metadata fallback: degraded to %s\n", res.SchedulerName)
	}
	// Node order, not map order — the sparkline must be seed-stable.
	nodes := make([]datanet.NodeID, 0, len(res.NodeWorkload))
	for id := range res.NodeWorkload {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var loads []int64
	for _, id := range nodes {
		loads = append(loads, res.NodeWorkload[id])
	}
	fmt.Printf("  per-node workload: %s\n", sparkline(loads))
	if *traceOut != "" {
		fmt.Printf("  trace: %d events written to %s (%s)\n", rec.Len(), *traceOut, *traceFormat)
	}
	if *execute {
		printTopOutput(res.Output, 10)
	}
	return nil
}

// analyzeDoc is the -json output schema of the analyze subcommand.
type analyzeDoc struct {
	App       string                   `json:"app"`
	Target    string                   `json:"target"`
	Scheduler string                   `json:"scheduler"`
	Result    *datanet.Result          `json:"result"`
	Metrics   *datanet.MetricsSnapshot `json:"metrics"`
}

// writeTrace exports the recorded timeline in the requested format.
func writeTrace(rec *datanet.Trace, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "chrome" {
		err = rec.WriteChromeTrace(f)
	} else {
		err = rec.WriteJSONL(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func runTop(args []string) error {
	c := newCommon("top")
	n := c.fs.Int("n", 10, "how many sub-datasets to list")
	metaIn := c.fs.String("meta", "", "answer from an encoded ElasticMap array instead of scanning the raw data")
	c.fs.Parse(args)
	if *metaIn != "" {
		// Meta-only path: no raw-data scan at all — the point of keeping
		// the meta-data around.
		blob, err := os.ReadFile(*metaIn)
		if err != nil {
			return err
		}
		meta, err := datanet.DecodeMeta(blob, "data")
		if err != nil {
			return err
		}
		idx := elasticmap.NewIndex(meta.Array())
		top := idx.Top(*n)
		fmt.Printf("%d dominant sub-datasets in the meta-data; top %d by recorded volume (no raw scan):\n",
			idx.DominantSubs(), len(top))
		for _, e := range top {
			fmt.Printf("  %-32s %12d bytes\n", e.Sub, e.Bytes)
		}
		return nil
	}
	if _, err := c.load(); err != nil {
		return err
	}
	totals := records.BySub(c.loaded)
	type kv struct {
		sub string
		sz  int64
	}
	all := make([]kv, 0, len(totals))
	for s, z := range totals {
		all = append(all, kv{s, z})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sz != all[j].sz {
			return all[i].sz > all[j].sz
		}
		return all[i].sub < all[j].sub
	})
	if *n > len(all) {
		*n = len(all)
	}
	fmt.Printf("%d sub-datasets; top %d by volume:\n", len(all), *n)
	for _, e := range all[:*n] {
		fmt.Printf("  %-32s %12d bytes\n", e.sub, e.sz)
	}
	return nil
}

// runVerify cross-checks persisted meta-data against the raw dataset:
// block counts, overall accuracy χ, and per-sub-dataset spot checks.
func runVerify(args []string) error {
	c := newCommon("verify")
	metaIn := c.fs.String("meta", "", "encoded ElasticMap array to verify")
	samples := c.fs.Int("samples", 10, "how many sub-datasets to spot-check")
	c.fs.Parse(args)
	if *metaIn == "" {
		return fmt.Errorf("-meta is required")
	}
	hfs, err := c.load()
	if err != nil {
		return err
	}
	blob, err := os.ReadFile(*metaIn)
	if err != nil {
		return err
	}
	meta, err := datanet.DecodeMeta(blob, "data")
	if err != nil {
		return err
	}
	info, err := hfs.Stat("data")
	if err != nil {
		return err
	}
	arr := meta.Array()
	fmt.Printf("meta-data: %d blocks; dataset: %d blocks\n", arr.Len(), len(info.Blocks))
	if arr.Len() != len(info.Blocks) {
		return fmt.Errorf("block count mismatch — the meta-data was built for a different layout (block size or dataset)")
	}
	truth := records.BySub(c.loaded)
	subs := make([]string, 0, len(truth))
	for sub := range truth {
		subs = append(subs, sub)
	}
	sort.Strings(subs)
	chi := arr.OverallAccuracy(subs)
	fmt.Printf("overall accuracy χ: %.1f%%\n", chi*100)

	// Spot-check the largest sub-datasets: dominant entries must be exact.
	sort.Slice(subs, func(i, j int) bool {
		if truth[subs[i]] != truth[subs[j]] {
			return truth[subs[i]] > truth[subs[j]]
		}
		return subs[i] < subs[j]
	})
	n := *samples
	if n > len(subs) {
		n = len(subs)
	}
	worst := 0.0
	for _, sub := range subs[:n] {
		est := meta.Estimate(sub)
		rel := float64(est-truth[sub]) / float64(truth[sub])
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
		fmt.Printf("  %-32s truth %10d  estimate %10d  (%+.2f%%)\n",
			sub, truth[sub], est, pctDiff(est, truth[sub]))
	}
	if chi < 0.5 {
		return fmt.Errorf("verification failed: χ %.1f%% — meta-data does not describe this dataset", chi*100)
	}
	fmt.Printf("verified: worst top-%d relative error %.2f%%\n", n, worst*100)
	return nil
}

// runSuite executes the full paper experiment suite. -parallel fans
// independent experiments out on a bounded worker pool (the output bytes
// are identical regardless of the worker count); -json-bench additionally
// writes the machine-readable benchmark report.
func runSuite(args []string) error {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	workers := fs.Int("parallel", 1, "worker-pool size for independent experiments (1 = sequential)")
	benchOut := fs.String("json-bench", "", "write per-experiment wall-clock and simulated makespans to this JSON file")
	fs.Parse(args)
	if *workers < 1 {
		return fmt.Errorf("-parallel must be at least 1")
	}
	if *benchOut == "" {
		return experiments.RunSuiteParallel(stdout, *workers)
	}
	rep, err := experiments.RunSuiteBench(stdout, *workers)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(*benchOut); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datanet: benchmark report written to %s\n", *benchOut)
	return nil
}

// runChaos drives the randomized robustness harness: N seeded fault
// plans, every scheduler, every invariant. Violations are printed with
// their replay seed and fail the command; -shrink additionally reduces
// the first violating plan to a minimal counterexample.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	runs := fs.Int("runs", 100, "number of seeded fault plans to check")
	seed := fs.Uint64("seed", 1, "base seed of the campaign (plans derive from it)")
	detectMode := fs.String("detect", "heartbeat", "failure detector under test: oracle | heartbeat | phi")
	shrink := fs.Bool("shrink", false, "reduce the first violating plan to a minimal counterexample")
	rebalance := fs.String("rebalance", "off", "run the distribution-aware rebalancer before each job and check the no-lost-blocks invariant: off | hotspot | anneal | both")
	mitigate := fs.String("mitigate", "off", "add a straggler-mitigated arm and check the mitigation invariants: off | speculative | coded")
	partitionMode := fs.String("partition", "off", "add key-aware partitioning arms and check the partition-independence invariant: off | hash | skew | range | rotate")
	clusterN := fs.Int("cluster", 0, "check the sharded metadata cluster with N nodes instead of the job engine (0 = engine)")
	replicas := fs.Int("replicas", 2, "followers per shard in cluster chaos")
	shards := fs.Int("shards", 4, "catalog shards in cluster chaos")
	fs.Parse(args)
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1")
	}
	mode, err := datanet.ParseDetectorMode(*detectMode)
	if err != nil {
		return err
	}
	if *clusterN > 0 {
		return runClusterChaos(*runs, *seed, *clusterN, *shards, *replicas, mode, *shrink)
	}
	rebalanceMode, err := datanet.ParseRebalanceMode(*rebalance)
	if err != nil {
		return err
	}
	if _, err := datanet.ParseMitigationMode(*mitigate); err != nil {
		return err
	}
	if *partitionMode != "" && *partitionMode != "off" && *partitionMode != "rotate" {
		if _, err := datanet.ParsePartitionMode(*partitionMode); err != nil {
			return err
		}
	}
	p := chaos.DefaultParams()
	p.Detect.Mode = mode
	p.Rebalance = rebalanceMode
	p.Mitigate = *mitigate
	p.Partition = *partitionMode
	rep, err := chaos.Run(*runs, *seed, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "chaos: %d runs under %s detection (%d crashes, %d slowdowns, %d read-error runs): %d violations\n",
		rep.Runs, mode, rep.Crashes, rep.Slowdowns, rep.ReadErrorRuns, len(rep.Violations))
	if len(rep.Violations) == 0 {
		return nil
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(stdout, "  %s\n", v)
	}
	if *shrink {
		v := rep.Violations[0]
		h, err := chaos.NewHarness(p)
		if err != nil {
			return err
		}
		min := chaos.Shrink(v.Plan, func(q *datanet.FaultPlan) bool {
			for _, w := range h.CheckPlan(v.Seed, q) {
				if w.Scheduler == v.Scheduler && w.Invariant == v.Invariant {
					return true
				}
			}
			return false
		})
		fmt.Fprintf(stdout, "minimal counterexample for seed %d (%s/%s):\n  %+v\n",
			v.Seed, v.Scheduler, v.Invariant, *min)
	}
	return fmt.Errorf("chaos: %d invariant violations in %d runs", len(rep.Violations), rep.Runs)
}

// runClusterChaos is the -cluster mode of the chaos subcommand: seeded
// crash/rejoin/decommission/addnode plans with client traffic against the
// sharded metadata cluster, checking the failover invariants (no lost
// arrays, no unflagged stale reads, exactly one primary per shard,
// bounded convergence, bit-identical replay).
func runClusterChaos(runs int, seed uint64, nodes, shards, replicas int, mode datanet.DetectorMode, shrink bool) error {
	p := chaos.DefaultClusterParams()
	p.Nodes, p.Shards, p.Replicas = nodes, shards, replicas
	p.Detect.Mode = mode
	rep, err := chaos.RunCluster(runs, seed, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "chaos: %d cluster runs (%d nodes, %d shards, %d replicas) under %s detection: %d crashes, %d rejoins, %d decommissions, %d adds, %d appends, %d reads, %d retries: %d violations\n",
		rep.Runs, nodes, shards, replicas, mode,
		rep.Crashes, rep.Rejoins, rep.Decommissions, rep.AddNodes, rep.Appends, rep.Reads,
		rep.Retries, len(rep.Violations))
	if len(rep.Violations) == 0 {
		return nil
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(stdout, "  %s\n", v)
	}
	if shrink {
		v := rep.Violations[0]
		min := chaos.ShrinkCluster(v.Plan, p, v.Invariant)
		blob, err := json.MarshalIndent(min, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "minimal counterexample for seed %d (%s):\n%s\n", v.Seed, v.Invariant, blob)
	}
	return fmt.Errorf("chaos: %d cluster invariant violations in %d runs", len(rep.Violations), rep.Runs)
}

// parseFaultPlan assembles a datanet.FaultPlan from the CLI specs:
// -crash "4@10,11@10:25" (node 4 dies at 10 s; node 11 dies at 10 s and
// rejoins at 25 s), -slow "3x0.5" (node 3 at half speed), -readerr 0.01.
// It returns nil when no fault knob is set so the engine stays on the
// fault-free fast path.
func parseFaultPlan(crashSpec, slowSpec string, readErr float64, seed int64) (*datanet.FaultPlan, error) {
	if crashSpec == "" && slowSpec == "" && readErr == 0 {
		return nil, nil
	}
	plan := &datanet.FaultPlan{Seed: seed, Read: datanet.ReadErrors{Prob: readErr}}
	if crashSpec != "" {
		for _, part := range strings.Split(crashSpec, ",") {
			nodeStr, timeStr, ok := strings.Cut(part, "@")
			if !ok {
				return nil, fmt.Errorf("bad -crash entry %q (want N@T[:REJOIN])", part)
			}
			node, err := strconv.Atoi(nodeStr)
			if err != nil {
				return nil, fmt.Errorf("bad -crash node in %q: %v", part, err)
			}
			atStr, rejoinStr, hasRejoin := strings.Cut(timeStr, ":")
			at, err := strconv.ParseFloat(atStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -crash time in %q: %v", part, err)
			}
			cr := datanet.Crash{Node: datanet.NodeID(node), At: at}
			if hasRejoin {
				if cr.RejoinAt, err = strconv.ParseFloat(rejoinStr, 64); err != nil {
					return nil, fmt.Errorf("bad -crash rejoin in %q: %v", part, err)
				}
			}
			plan.Crashes = append(plan.Crashes, cr)
		}
	}
	if slowSpec != "" {
		for _, part := range strings.Split(slowSpec, ",") {
			nodeStr, facStr, ok := strings.Cut(part, "x")
			if !ok {
				return nil, fmt.Errorf("bad -slow entry %q (want NxF)", part)
			}
			node, err := strconv.Atoi(nodeStr)
			if err != nil {
				return nil, fmt.Errorf("bad -slow node in %q: %v", part, err)
			}
			f, err := strconv.ParseFloat(facStr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -slow factor in %q: %v", part, err)
			}
			plan.Slow = append(plan.Slow, datanet.Slowdown{
				Node: datanet.NodeID(node), CPU: f, Disk: f, Net: f,
			})
		}
	}
	return plan, nil
}

func printTopOutput(out map[string]string, n int) {
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if n > len(keys) {
		n = len(keys)
	}
	fmt.Printf("  output (%d keys, first %d):\n", len(keys), n)
	for _, k := range keys[:n] {
		v := out[k]
		if len(v) > 60 {
			v = v[:60] + "…"
		}
		fmt.Printf("    %-20s %s\n", k, v)
	}
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

func sparkline(xs []int64) string {
	if len(xs) == 0 {
		return ""
	}
	width := 60
	if width > len(xs) {
		width = len(xs)
	}
	cells := make([]int64, width)
	for i := range cells {
		lo, hi := i*len(xs)/width, (i+1)*len(xs)/width
		if hi <= lo {
			hi = lo + 1
		}
		mx := xs[lo]
		for _, v := range xs[lo:hi] {
			if v > mx {
				mx = v
			}
		}
		cells[i] = mx
	}
	var mn, mx int64 = cells[0], cells[0]
	for _, v := range cells {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	var sb strings.Builder
	for _, v := range cells {
		idx := 0
		if mx > mn {
			idx = int(float64(v-mn) / float64(mx-mn) * float64(len(sparkLevels)-1))
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

func pctDiff(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a-b) / float64(b) * 100
}
