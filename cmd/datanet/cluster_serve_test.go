package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"datanet/internal/clusterd"
)

// TestRunChaosClusterSmoke drives the chaos subcommand in cluster mode:
// a small seeded campaign must pass every invariant and print its census.
func TestRunChaosClusterSmoke(t *testing.T) {
	buf := &bytes.Buffer{}
	stdout = buf
	defer func() { stdout = os.Stdout }()
	if err := runChaos([]string{"-cluster", "4", "-replicas", "2", "-runs", "20", "-seed", "3"}); err != nil {
		t.Fatalf("cluster chaos: %v\n%s", err, buf)
	}
	out := buf.String()
	if !strings.Contains(out, "20 cluster runs (4 nodes, 4 shards, 2 replicas)") ||
		!strings.Contains(out, ": 0 violations") {
		t.Fatalf("unexpected chaos output: %s", out)
	}
}

// TestServeClusterLoadgenSmoke boots a 3-node, 2-shard cluster on random
// ports and drives the load generator at it twice with the same seed: the
// router must discover the topology, shard-route every request, and
// produce the same deterministic summary line both times.
func TestServeClusterLoadgenSmoke(t *testing.T) {
	meta := writeEncodedMeta(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	serveOut := &bytes.Buffer{}
	stdout = serveOut
	addrCh := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serveCluster(ctx, "127.0.0.1:0", []string{"reviews=" + meta}, 64,
			3, 1, 2, func(a string) { addrCh <- a }, obsOptions{})
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-serveErr:
		t.Fatalf("serveCluster failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serveCluster never became ready")
	}

	// The admin plane answers on the seed node with the full shard map.
	var tv clusterd.TopologyView
	if err := getJSON(&http.Client{Timeout: 5 * time.Second}, "http://"+addr+"/admin/topology", &tv); err != nil {
		t.Fatalf("admin/topology: %v", err)
	}
	if tv.Shards != 2 || len(tv.Nodes) != 3 {
		t.Fatalf("topology %+v, want 2 shards over 3 nodes", tv)
	}
	for _, sv := range tv.Map {
		if sv.Primary < 0 {
			t.Fatalf("shard %d has no primary at boot", sv.Shard)
		}
	}

	runOnce := func(seed int64) string {
		buf := &bytes.Buffer{}
		stdout = buf
		if err := runLoadgen([]string{"-addr", addr, "-clients", "4", "-requests", "80",
			"-seed", fmt.Sprint(seed), "-plan-nodes", "4"}); err != nil {
			t.Fatalf("loadgen: %v\n%s", err, buf)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		if len(lines) < 3 {
			t.Fatalf("loadgen printed %d lines, want summary + wall-clock + per-endpoint:\n%s", len(lines), buf)
		}
		return lines[0]
	}
	first := runOnce(7)
	second := runOnce(7)
	if first != second {
		t.Fatalf("cluster-mode summary line not reproducible for fixed seed:\n  %s\n  %s", first, second)
	}
	if !strings.Contains(first, `80 requests to "reviews" (4 clients, seed 7)`) ||
		!strings.Contains(first, "0 transport-errors") {
		t.Fatalf("unexpected summary line: %q", first)
	}

	stdout = os.Stdout
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serveCluster shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveCluster did not shut down")
	}
	out := serveOut.String()
	if !strings.Contains(out, "serve: cluster of 3 nodes, 2 shards, 1 replicas per shard") ||
		!strings.Contains(out, `serve: loaded "reviews"`) ||
		strings.Count(out, "listening on http://") != 3 {
		t.Fatalf("unexpected serveCluster output:\n%s", out)
	}
}
