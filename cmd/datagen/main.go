// Command datagen generates synthetic datasets in the repository's binary
// record format (see internal/records): the movie-review log with content
// clustering and the GitHub-style event log. The files feed cmd/datanet.
//
// Usage:
//
//	datagen -type movies -records 200000 -movies 2000 -out reviews.dnr
//	datagen -type events -records 250000 -out events.dnr
package main

import (
	"flag"
	"fmt"
	"os"

	"datanet/internal/gen"
	"datanet/internal/records"
)

func main() {
	var (
		typ     = flag.String("type", "movies", "dataset type: movies | events | weblog")
		out     = flag.String("out", "dataset.dnr", "output path")
		n       = flag.Int("records", 100000, "record count")
		movies  = flag.Int("movies", 2000, "movie catalogue size (movies type)")
		span    = flag.Int("span", 365, "time span in days")
		seed    = flag.Int64("seed", 42, "generation seed")
		quietly = flag.Bool("q", false, "suppress the summary")
	)
	flag.Parse()

	var recs []records.Record
	switch *typ {
	case "movies":
		recs = gen.Movies(gen.MovieConfig{
			Movies:   *movies,
			Reviews:  *n,
			SpanDays: *span,
			Seed:     *seed,
		})
	case "events":
		recs = gen.Events(gen.EventConfig{
			Events:   *n,
			SpanDays: *span,
			Seed:     *seed,
		})
	case "weblog":
		recs = gen.WorldCup(gen.WorldCupConfig{
			Requests: *n,
			SpanDays: *span,
			Seed:     *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown type %q (want movies, events or weblog)\n", *typ)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w := records.NewWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	if !*quietly {
		fmt.Printf("wrote %d records (%s) to %s\n", len(recs), bytesHuman(records.TotalSize(recs)), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}

func bytesHuman(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
