package main

import "testing"

func TestBytesHuman(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{100, "100 B"},
		{10 << 10, "10.0 KiB"},
		{5 << 20, "5.0 MiB"},
		{3 << 30, "3.0 GiB"},
	}
	for _, c := range cases {
		if got := bytesHuman(c.in); got != c.want {
			t.Errorf("bytesHuman(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
