// Command datanet-bench regenerates every table and figure of the paper's
// evaluation on the simulated substrate and prints them as text tables,
// series and sparklines. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers.
//
// Usage:
//
//	datanet-bench            # run the full suite
//	datanet-bench -only fig5 # run one experiment (fig1,fig2,table1,fig5,
//	                         # fig6,fig7,fig8,table2,fig9,fig10,migration,
//	                         # ablation)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"datanet/internal/experiments"
	"datanet/internal/stats"
)

func main() {
	only := flag.String("only", "", "run a single experiment (fig1, fig2, table1, fig5, fig6, fig7, fig8, table2, fig9, fig10, migration, ablation, theory, sweep, hetero, reactive, iosaving, selectivity, weblog, placement, placement-sweep, straggler-sweep, partition-sweep, modelcheck, aggregation, amortization, blocksize, replication, faulttol, detect)")
	csvDir := flag.String("csv", "", "also write the figure series as CSV files into this directory")
	htmlOut := flag.String("html", "", "also write a self-contained HTML report (inline SVG) to this path")
	workers := flag.Int("parallel", 1, "worker-pool size for independent suite experiments (output is identical at any count)")
	benchOut := flag.String("json-bench", "", "run the suite plus the hot-path microbenches (build MB/s, estimates/sec, HTTP p50/p99) and write the benchmark record to this JSON file")
	flag.Parse()

	if *benchOut != "" && *only != "" {
		// Single-experiment benchmark record: run just the named experiment
		// and write its makespans/counters (e.g. the placement sweep's
		// bytes-moved bill into BENCH_8.json).
		start := time.Now()
		var secs []experiments.BenchSection
		if err := runOne(*only, func(name string, out fmt.Stringer) {
			secs = append(secs, experiments.SectionFor(name, time.Since(start), out))
		}); err != nil {
			fmt.Fprintln(os.Stderr, "datanet-bench:", err)
			os.Exit(1)
		}
		rep := &experiments.BenchReport{Workers: 1, WallSeconds: time.Since(start).Seconds(), Sections: secs}
		if err := rep.WriteJSON(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "datanet-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *benchOut)
		return
	}

	if *benchOut != "" {
		rep, err := experiments.RunSuiteBench(os.Stdout, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datanet-bench:", err)
			os.Exit(1)
		}
		if rep.HotPath, err = experiments.MeasureHotPaths(); err != nil {
			fmt.Fprintln(os.Stderr, "datanet-bench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "datanet-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *benchOut)
		return
	}

	if *htmlOut != "" {
		if err := experiments.WriteHTMLReport(*htmlOut); err != nil {
			fmt.Fprintln(os.Stderr, "datanet-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *htmlOut)
		if *csvDir == "" && *only == "" {
			return
		}
	}

	if *csvDir != "" {
		files, err := experiments.WriteCSVSuite(*csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datanet-bench:", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		if *only == "" {
			return
		}
	}

	if *only == "" {
		if err := experiments.RunSuiteParallel(os.Stdout, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "datanet-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := runOne(*only, nil); err != nil {
		fmt.Fprintln(os.Stderr, "datanet-bench:", err)
		os.Exit(1)
	}
}

// runOne executes one named experiment, printing each result and — when
// emit is non-nil — handing it over for benchmark-record collection.
func runOne(name string, emit func(string, fmt.Stringer)) error {
	printAs := func(section string, s fmt.Stringer, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(s.String())
		if emit != nil {
			emit(section, s)
		}
		return nil
	}
	print := func(s fmt.Stringer, err error) error {
		return printAs(name, s, err)
	}
	switch name {
	case "fig1":
		p := experiments.DefaultMovieParams()
		p.Blocks = 128
		return print(experiments.Fig1(p))
	case "fig2":
		fmt.Println(experiments.Fig2(stats.Gamma{}, 0, nil).String())
		return nil
	case "table1":
		return print(experiments.Table1(nil))
	case "fig5":
		return print(experiments.Fig5(experiments.MovieParams{}))
	case "fig6":
		return print(experiments.Fig6(nil))
	case "fig7":
		return print(experiments.Fig7(nil))
	case "fig8":
		return print(experiments.Fig8(experiments.EventParams{}))
	case "table2":
		return print(experiments.Table2(nil, nil))
	case "fig9":
		return print(experiments.Fig9(nil, 50))
	case "fig10":
		return print(experiments.Fig10(nil, nil))
	case "migration":
		return print(experiments.Migration(nil))
	case "ablation":
		env, err := experiments.NewMovieEnv(experiments.DefaultMovieParams())
		if err != nil {
			return err
		}
		if err := print(experiments.BucketAblation(env)); err != nil {
			return err
		}
		return print(experiments.SchedulerAblation(env))
	case "theory":
		return print(experiments.Theory(stats.Gamma{}, 0, 0, 0))
	case "sweep":
		return print(experiments.ClusterSweep(nil, experiments.MovieParams{}))
	case "hetero":
		return print(experiments.Heterogeneity(experiments.MovieParams{}))
	case "reactive":
		return print(experiments.Reactive(nil))
	case "iosaving":
		return print(experiments.IOSaving(nil, nil))
	case "selectivity":
		return print(experiments.Selectivity(nil, nil))
	case "weblog":
		return print(experiments.WebLog(experiments.WebLogParams{}))
	case "placement":
		// The static policy comparison plus the online rebalancer sweep:
		// together they are the placement benchmark surface.
		pr, err := experiments.Placement(experiments.MovieParams{})
		if err := printAs("placement", pr, err); err != nil {
			return err
		}
		sw, err := experiments.PlacementSweep(experiments.MovieParams{})
		return printAs("placement-sweep", sw, err)
	case "placement-sweep":
		return print(experiments.PlacementSweep(experiments.MovieParams{}))
	case "straggler-sweep":
		return print(experiments.StragglerSweep(nil, experiments.MovieParams{}))
	case "partition-sweep":
		return print(experiments.PartitionSweep(experiments.MovieParams{}))
	case "modelcheck":
		return print(experiments.ModelCheck(nil, nil))
	case "aggregation":
		return print(experiments.Aggregation(nil, nil))
	case "blocksize":
		return print(experiments.BlockSize(nil, experiments.MovieParams{}))
	case "replication":
		return print(experiments.Replication(nil, experiments.MovieParams{}))
	case "amortization":
		return print(experiments.Amortization(nil))
	case "faulttol":
		return print(experiments.FaultTolerance(experiments.MovieParams{}))
	case "detect":
		return print(experiments.DetectorSweep(experiments.MovieParams{}))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
