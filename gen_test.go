package datanet_test

import (
	"strings"
	"testing"

	"datanet"
)

func TestGenerateMovieLogFacade(t *testing.T) {
	recs := datanet.GenerateMovieLog(datanet.MovieLogConfig{Movies: 50, Reviews: 1000, Seed: 1})
	if len(recs) != 1000 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Sub == "" || !strings.HasPrefix(datanet.MovieID(0), "movie-") {
		t.Error("movie keys malformed")
	}
}

func TestGenerateEventLogFacade(t *testing.T) {
	recs := datanet.GenerateEventLog(datanet.EventLogConfig{Events: 500, Seed: 2})
	if len(recs) != 500 {
		t.Fatalf("records = %d", len(recs))
	}
	types := datanet.EventTypes()
	if len(types) < 20 {
		t.Errorf("event types = %d, want >20 as in the GitHub archive", len(types))
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// package state.
	types[0] = "corrupted"
	if datanet.EventTypes()[0] == "corrupted" {
		t.Error("EventTypes returned shared state")
	}
}

func TestGenerateWebLogFacade(t *testing.T) {
	recs := datanet.GenerateWebLog(datanet.WebLogConfig{Requests: 800, Seed: 3})
	if len(recs) != 800 {
		t.Fatalf("records = %d", len(recs))
	}
	if !strings.HasPrefix(datanet.TeamID(5), "team-") {
		t.Errorf("TeamID = %q", datanet.TeamID(5))
	}
}

func TestNewScaledCluster(t *testing.T) {
	full := datanet.NewCluster(4, 2)
	scaled := datanet.NewScaledCluster(4, 2, 256<<10)
	if scaled.N() != 4 || scaled.Racks() != 2 {
		t.Fatalf("scaled topology: %d nodes, %d racks", scaled.N(), scaled.Racks())
	}
	// Rates shrink by blockSize / 64 MiB.
	ratio := scaled.Node(0).CPURate / full.Node(0).CPURate
	want := float64(256<<10) / float64(64<<20)
	if diff := ratio - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("rate scale = %g, want %g", ratio, want)
	}
	// Degenerate block size falls back to unscaled.
	if got := datanet.NewScaledCluster(2, 1, 0).Node(0).CPURate; got != full.Node(0).CPURate {
		t.Errorf("zero block size scale = %g", got)
	}
}

func TestSessionizeFacade(t *testing.T) {
	app := datanet.Sessionize(0)
	if app.Name() != "Sessionize" || app.CostFactor() <= 0 {
		t.Errorf("Sessionize app malformed: %s %g", app.Name(), app.CostFactor())
	}
}
