package datanet_test

import (
	"fmt"

	"datanet"
)

// Example demonstrates the complete DataNet workflow: store a log, scan it
// once into ElasticMap meta-data, and run a workload-balanced analysis.
func Example() {
	topo := datanet.NewCluster(4, 2)
	fs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 16 << 10, Seed: 1})
	if err != nil {
		panic(err)
	}

	// Ten users' log lines; user-0 dominates (content clustering).
	var recs []datanet.Record
	for i := 0; i < 400; i++ {
		user := "user-0"
		if i%4 == 3 {
			user = fmt.Sprintf("user-%d", 1+i%9)
		}
		recs = append(recs, datanet.Record{
			Sub:     user,
			Time:    int64(i),
			Payload: "alpha beta gamma delta epsilon zeta",
		})
	}
	if _, err := fs.Write("app.log", recs); err != nil {
		panic(err)
	}

	meta, err := datanet.BuildMeta(fs, "app.log", datanet.MetaOptions{Alpha: 0.5})
	if err != nil {
		panic(err)
	}

	res, err := datanet.Job{
		FS: fs, File: "app.log", Target: "user-0",
		App: datanet.WordCount(), Scheduler: datanet.SchedulerDataNet,
		Meta: meta, Execute: true,
	}.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("scheduler:", res.SchedulerName)
	fmt.Println("alpha count:", res.Output["alpha"])
	// Output:
	// scheduler: datanet
	// alpha count: 300
}

// ExampleMeta_Estimate shows the Eq.-6 size estimator: dominant
// sub-datasets are recorded exactly.
func ExampleMeta_Estimate() {
	topo := datanet.NewCluster(2, 1)
	fs, _ := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 8 << 10, Replication: 2, Seed: 2})
	var recs []datanet.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, datanet.Record{Sub: "hot", Time: int64(i), Payload: "0123456789012345"})
	}
	fs.Write("log", recs)
	meta, _ := datanet.BuildMeta(fs, "log", datanet.MetaOptions{Alpha: 1})
	var truth int64
	for _, r := range recs {
		truth += r.Size()
	}
	fmt.Println(meta.Estimate("hot") == truth)
	// Output:
	// true
}

// ExampleMeta_Weights shows the per-block scheduler input derived from the
// meta-data.
func ExampleMeta_Weights() {
	topo := datanet.NewCluster(2, 1)
	fs, _ := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 4 << 10, Replication: 2, Seed: 3})
	var recs []datanet.Record
	for i := 0; i < 200; i++ {
		sub := "early"
		if i >= 100 {
			sub = "late"
		}
		recs = append(recs, datanet.Record{Sub: sub, Time: int64(i), Payload: "xxxxxxxxxxxxxxxx"})
	}
	fs.Write("log", recs)
	meta, _ := datanet.BuildMeta(fs, "log", datanet.MetaOptions{Alpha: 1})
	w := meta.Weights("early")
	// The "early" sub-dataset lives in the first half of the blocks.
	fmt.Println(w[0] > 0, w[len(w)-1] == 0)
	// Output:
	// true true
}

// ExampleScheduler_String lists the available scheduling policies.
func ExampleScheduler_String() {
	for _, s := range []datanet.Scheduler{
		datanet.SchedulerLocality, datanet.SchedulerDataNet,
		datanet.SchedulerCapacityAware, datanet.SchedulerMaxFlow, datanet.SchedulerLPT,
	} {
		fmt.Println(s)
	}
	// Output:
	// locality
	// datanet
	// datanet-capacity
	// maxflow
	// lpt
}
