module datanet

go 1.22
