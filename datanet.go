// Package datanet is the public API of this DataNet reproduction
// ("DataNet: A Data Distribution-aware Method for Sub-dataset Analysis On
// Distributed File Systems", IPDPS 2016).
//
// DataNet makes sub-dataset analyses over block-oriented distributed file
// systems workload-balanced by (1) scanning the raw data once to build an
// ElasticMap — per-block meta-data that stores dominant sub-dataset sizes
// exactly in a hash map and non-dominant ones approximately in a Bloom
// filter — and (2) scheduling block tasks with a distribution-aware
// algorithm that drives every node toward the average workload.
//
// A minimal end-to-end session:
//
//	topo := datanet.NewCluster(32, 4)
//	fs, _ := datanet.NewFileSystem(topo, datanet.FSConfig{})
//	fs.Write("logs", recs)                       // recs: []datanet.Record
//	meta, _ := datanet.BuildMeta(fs, "logs", datanet.MetaOptions{})
//	job := datanet.Job{FS: fs, File: "logs", Target: "movie-00042",
//	    App: datanet.WordCount(), Scheduler: datanet.SchedulerDataNet, Meta: meta}
//	result, _ := job.Run()
//
// The sub-packages under internal/ implement the substrates (HDFS model,
// MapReduce engine, generators, statistics); this package re-exports the
// surface a downstream user needs.
package datanet

import (
	"datanet/internal/apps"
	"datanet/internal/cluster"
	"datanet/internal/detect"
	"datanet/internal/elasticmap"
	"datanet/internal/faults"
	"datanet/internal/hdfs"
	"datanet/internal/mapreduce"
	"datanet/internal/metrics"
	"datanet/internal/partition"
	"datanet/internal/records"
	"datanet/internal/sched"
	"datanet/internal/straggle"
	"datanet/internal/trace"
)

// Record is one log record; Sub is its sub-dataset key.
type Record = records.Record

// Topology describes the compute cluster.
type Topology = cluster.Topology

// NodeID identifies a cluster node.
type NodeID = cluster.NodeID

// FileSystem is the HDFS-model filesystem.
type FileSystem = hdfs.FileSystem

// FSConfig configures block size, replication and placement.
type FSConfig = hdfs.Config

// Block is one stored block with its replica locations.
type Block = hdfs.Block

// MetaOptions configures ElasticMap construction (α, Bloom false-positive
// rate, bucket bounds, or a memory budget).
type MetaOptions = elasticmap.Options

// App is a MapReduce analysis application.
type App = apps.App

// Result is a completed job's outcome.
type Result = mapreduce.Result

// FaultPlan schedules failures for a run: node crashes (permanent or with
// rejoin), degraded hardware rates, and transient read errors. All faults
// are deterministic functions of the plan, so runs replay identically.
type FaultPlan = faults.Plan

// Crash kills one node at a simulated time (see FaultPlan).
type Crash = faults.Crash

// Slowdown scales one node's CPU/disk/NIC rates (see FaultPlan).
type Slowdown = faults.Slowdown

// ReadErrors configures transient per-attempt block-read failures.
type ReadErrors = faults.ReadErrors

// RetryPolicy bounds task re-execution under faults (attempt cap and
// exponential backoff in simulated time).
type RetryPolicy = faults.RetryPolicy

// DetectorConfig selects how the master learns about node crashes: the
// historical oracle (instant knowledge), a fixed-timeout heartbeat
// detector, or the φ-accrual adaptive variant. The zero value is the
// oracle, preserving pre-detector behavior exactly.
type DetectorConfig = detect.Config

// DetectorMode enumerates failure-detection strategies.
type DetectorMode = detect.Mode

// Detector modes for DetectorConfig.Mode.
const (
	// DetectOracle reacts to crashes at the crash instant (no detection
	// delay — the pre-detector engine behavior).
	DetectOracle = detect.Oracle
	// DetectHeartbeat suspects a node after a fixed number of missed
	// heartbeats (timeout = 3 × interval unless overridden).
	DetectHeartbeat = detect.Heartbeat
	// DetectPhi adapts the suspicion timeout to observed heartbeat
	// jitter (φ-accrual style).
	DetectPhi = detect.Phi
)

// ParseDetectorMode parses "oracle", "heartbeat"/"hb" or "phi".
func ParseDetectorMode(s string) (DetectorMode, error) { return detect.ParseMode(s) }

// MitigationConfig configures the straggler-mitigation layer: quantile-
// triggered speculative backups or coded k-of-n execution. The zero value
// (and a nil pointer) disable mitigation bit-identically.
type MitigationConfig = straggle.Config

// MitigationMode enumerates mitigation strategies.
type MitigationMode = straggle.Mode

// Mitigation modes for MitigationConfig.Mode.
const (
	// MitigateOff disables mitigation (the zero value).
	MitigateOff = straggle.ModeOff
	// MitigateSpeculative launches budgeted backup attempts for tasks
	// whose projected completion sits above the running-attempt quantile.
	MitigateSpeculative = straggle.ModeSpeculative
	// MitigateCoded splits the task set into k-of-n groups with Reed-
	// Solomon parity tasks; any k completions reconstruct the rest.
	MitigateCoded = straggle.ModeCoded
)

// ParseMitigationMode parses "off" (or ""), "speculative" or "coded".
func ParseMitigationMode(s string) (MitigationMode, error) { return straggle.ParseMode(s) }

// PartitionConfig configures key-aware reduce partitioning: the strategy,
// the weighted-reservoir sample size and seed (range mode), and the
// per-key split cap (skew mode). A nil pointer or Mode "off" keeps the
// legacy volumetric 1/R shuffle split bit-identically.
type PartitionConfig = partition.Config

// PartitionMode enumerates reduce-partitioning strategies.
type PartitionMode = partition.Mode

// Partition modes for PartitionConfig.Mode.
const (
	// PartitionOff disables key-aware partitioning (the zero value).
	PartitionOff = partition.ModeOff
	// PartitionHash assigns keys by FNV hash modulo the reducer count —
	// the classic baseline, balanced only when the keys are.
	PartitionHash = partition.ModeHash
	// PartitionSkew bin-packs keys by harvested frequency (LPT greedy),
	// splitting heavy keys across reducers; its max reducer load never
	// exceeds hash's.
	PartitionSkew = partition.ModeSkew
	// PartitionRange cuts the key space at quantiles of a weighted
	// reservoir sample, giving each reducer a contiguous key range.
	PartitionRange = partition.ModeRange
)

// ParsePartitionMode parses "off" (or ""), "hash", "skew" or "range".
func ParsePartitionMode(s string) (PartitionMode, error) { return partition.ParseMode(s) }

// Rebalancer is the distribution-aware replica maintenance loop: hot
// blocks (high access count × sub-dataset concentration, straight from
// ElasticMap) gain replicas on underloaded nodes, and a simulated-
// annealing pass relocates replicas toward a lower-imbalance layout.
type Rebalancer = hdfs.Rebalancer

// RebalancerConfig shapes the maintenance loop (mode, tick interval,
// per-tick move caps, annealing seed).
type RebalancerConfig = hdfs.RebalancerConfig

// RebalanceStats accumulates what the loop did (ticks, moves, bytes).
type RebalanceStats = hdfs.RebalanceStats

// Rebalance modes for RebalancerConfig.Mode.
const (
	// RebalanceOff disables the rebalancer (the default).
	RebalanceOff = hdfs.RebalanceOff
	// RebalanceHotSpot adds replicas of hot blocks.
	RebalanceHotSpot = hdfs.RebalanceHotSpot
	// RebalanceAnneal relocates replicas by simulated annealing.
	RebalanceAnneal = hdfs.RebalanceAnneal
	// RebalanceBoth runs the hot-spot pass, then annealing.
	RebalanceBoth = hdfs.RebalanceBoth
)

// ParseRebalanceMode parses "off", "hotspot", "anneal" or "both".
func ParseRebalanceMode(s string) (string, error) { return hdfs.ParseRebalanceMode(s) }

// NewRebalancer builds a maintenance loop over fs.
func NewRebalancer(fs *FileSystem, cfg RebalancerConfig) *Rebalancer {
	return hdfs.NewRebalancer(fs, cfg)
}

// Trace records a run's full event timeline on the simulated clock:
// scheduler decision audits (candidates, locality, workload vs the
// cluster-average W̄, which rule fired), task attempts, fault deliveries,
// re-replications and phase barriers. Export with WriteJSONL,
// WriteChromeTrace (Perfetto / chrome://tracing) or Snapshot.
type Trace = trace.Recorder

// NewTrace returns an empty recorder, ready for Job.Trace.
func NewTrace() *Trace { return trace.New() }

// TraceEvent is one recorded timeline entry.
type TraceEvent = trace.Event

// MetricsSnapshot is the counters/gauges/histograms digest of a trace.
type MetricsSnapshot = metrics.Snapshot

// Typed job-failure errors under faults.
var (
	// ErrDataLost: every replica of a needed block was destroyed.
	ErrDataLost = mapreduce.ErrDataLost
	// ErrRetriesExhausted: a task exceeded its attempt cap.
	ErrRetriesExhausted = mapreduce.ErrRetriesExhausted
	// ErrNoLiveNodes: the whole cluster died before the job finished.
	ErrNoLiveNodes = mapreduce.ErrNoLiveNodes
)

// NewCluster builds n homogeneous nodes over the given rack count; it
// panics on invalid sizes (use cluster.NewHomogeneous via the internal
// package for error returns in library code).
func NewCluster(n, racks int) *Topology {
	return cluster.MustHomogeneous(n, racks)
}

// NewScaledCluster builds n homogeneous nodes whose disk/CPU/network rates
// are scaled so that processing one block of blockSize bytes takes as long
// as a 64 MiB block would on Marmot-class hardware. Use it when running
// scaled-down datasets (small blocks) so the simulated timings keep the
// paper's proportions instead of being swamped by fixed per-task
// overheads; it panics on invalid sizes.
func NewScaledCluster(n, racks int, blockSize int64) *Topology {
	scale := float64(blockSize) / float64(hdfs.DefaultBlockSize)
	if scale <= 0 {
		scale = 1
	}
	specs := make([]cluster.Node, n)
	for i := range specs {
		specs[i] = cluster.Node{
			Rack:     i % racks,
			CPURate:  cluster.DefaultCPURate * scale,
			DiskRate: cluster.DefaultDiskRate * scale,
			NetRate:  cluster.DefaultNetRate * scale,
			Slots:    cluster.DefaultSlots,
		}
	}
	topo, err := cluster.NewHeterogeneous(specs, racks)
	if err != nil {
		panic(err)
	}
	return topo
}

// NewFileSystem creates an empty HDFS-model filesystem.
func NewFileSystem(topo *Topology, cfg FSConfig) (*FileSystem, error) {
	return hdfs.NewFileSystem(topo, cfg)
}

// Meta is the ElasticMap array over one file plus the context needed to
// schedule against it.
type Meta struct {
	arr  *elasticmap.Array
	file string
}

// BuildMeta scans file's blocks once and constructs its ElasticMap array.
// When opts.BucketBounds is nil, Fibonacci bucket bounds scaled to the
// filesystem's block size are used (the paper's 1 kb unit corresponds to
// 64 MB blocks).
func BuildMeta(fs *FileSystem, file string, opts MetaOptions) (*Meta, error) {
	blocks, err := fs.Blocks(file)
	if err != nil {
		return nil, err
	}
	if opts.BucketBounds == nil {
		opts.BucketBounds = elasticmap.ScaledFibonacciBounds(fs.Config().BlockSize)
	}
	perBlock := make([][]records.Record, len(blocks))
	for i, b := range blocks {
		perBlock[i] = b.Records
	}
	return &Meta{arr: elasticmap.Build(perBlock, opts), file: file}, nil
}

// Array exposes the underlying ElasticMap array.
func (m *Meta) Array() *elasticmap.Array { return m.arr }

// Estimate returns the Eq.-6 total-size estimate of a sub-dataset.
func (m *Meta) Estimate(sub string) int64 { return m.arr.Estimate(sub) }

// Weights returns per-block |b ∩ sub| estimates in block order — the
// scheduler input.
func (m *Meta) Weights(sub string) []int64 {
	w := make([]int64, m.arr.Len())
	for _, be := range m.arr.Distribution(sub) {
		w[be.Block] = be.Size
	}
	return w
}

// HeatProfile returns the per-block concentration of sub in block order —
// the access-heat signal the distribution-aware rebalancer consumes.
func (m *Meta) HeatProfile(sub string) []float64 { return m.arr.HeatProfile(sub) }

// MemoryBytes returns the meta-data footprint.
func (m *Meta) MemoryBytes() int64 { return m.arr.MemoryBits() / 8 }

// Encode serializes the meta-data for persistence.
func (m *Meta) Encode() ([]byte, error) { return elasticmap.Encode(m.arr) }

// DecodeMeta reloads meta-data produced by Encode.
func DecodeMeta(data []byte, file string) (*Meta, error) {
	arr, err := elasticmap.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Meta{arr: arr, file: file}, nil
}

// Scheduler selects the task-assignment policy for a job.
type Scheduler int

// Available schedulers.
const (
	// SchedulerLocality is Hadoop's default block-locality scheduling
	// (the paper's baseline).
	SchedulerLocality Scheduler = iota
	// SchedulerDataNet is the paper's Algorithm 1 (requires Meta).
	SchedulerDataNet
	// SchedulerCapacityAware is Algorithm 1 with capacity-proportional
	// targets for heterogeneous clusters.
	SchedulerCapacityAware
	// SchedulerMaxFlow is the offline Ford–Fulkerson optimal assignment.
	SchedulerMaxFlow
	// SchedulerLPT is the longest-processing-time greedy ablation.
	SchedulerLPT
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case SchedulerDataNet:
		return "datanet"
	case SchedulerCapacityAware:
		return "datanet-capacity"
	case SchedulerMaxFlow:
		return "maxflow"
	case SchedulerLPT:
		return "lpt"
	default:
		return "locality"
	}
}

func (s Scheduler) factory() sched.Factory {
	switch s {
	case SchedulerDataNet:
		return sched.NewDataNetPicker
	case SchedulerCapacityAware:
		return sched.NewCapacityAwarePicker
	case SchedulerMaxFlow:
		return sched.NewFlowPicker
	case SchedulerLPT:
		return sched.NewLPTPicker
	default:
		return sched.NewLocalityPicker
	}
}

// Job describes one sub-dataset analysis run.
type Job struct {
	// FS and File locate the input.
	FS   *FileSystem
	File string
	// Target is the sub-dataset key to analyze ("" = whole dataset).
	Target string
	// App is the analysis application.
	App App
	// Scheduler picks the policy; distribution-aware policies need Meta.
	Scheduler Scheduler
	// Meta supplies block weights for distribution-aware scheduling.
	Meta *Meta
	// SkipEmpty drops blocks the meta-data proves empty of Target.
	SkipEmpty bool
	// Execute runs the real Map/Reduce functions and fills Result.Output.
	Execute bool
	// Reducers overrides the reduce-task count (default: one per node).
	Reducers int
	// Faults, when non-nil, injects failures (crashes, slowdowns, read
	// errors) into the run; the engine recovers via re-replication and
	// bounded retries, or fails with a typed error (ErrDataLost,
	// ErrRetriesExhausted, ErrNoLiveNodes) when recovery is impossible.
	Faults *FaultPlan
	// Retry bounds task re-execution under faults; zero fields take
	// Hadoop-like defaults (4 attempts, 0.5 s backoff, doubling).
	Retry RetryPolicy
	// Detect selects the failure detector. The zero value is the oracle:
	// the master reacts to crashes instantly, as before detectors
	// existed. Heartbeat and φ-accrual modes pay a detection delay and
	// may falsely suspect slow nodes (reconciled by duplicate-completion
	// dedupe).
	Detect DetectorConfig
	// Mitigate, when non-nil and not off, turns on straggler mitigation:
	// quantile-triggered speculative backups or coded k-of-n execution.
	// Nil (or Mode "off") runs are bit-identical to pre-mitigation runs.
	Mitigate *MitigationConfig
	// Partition, when non-nil and not off, plans the key → reducer
	// assignment from key frequencies harvested during the analysis-map
	// phase instead of the uniform volumetric split. Which strategy runs
	// never changes the merged output — only the shuffle/reduce timing.
	Partition *PartitionConfig
	// MetaErr records that meta-data for this job failed to load (e.g. a
	// corrupt ElasticMap encoding). The job then degrades to the locality
	// baseline and sets Result.MetadataFallback instead of failing.
	MetaErr error
	// Trace, when non-nil, records the run's event timeline and scheduler
	// decision audit (see NewTrace). Nil runs record nothing and are
	// bit-identical to untraced runs.
	Trace *Trace
}

// Run executes the job on the simulated engine.
func (j Job) Run() (*Result, error) {
	var weights []int64
	if j.Meta != nil && j.Scheduler != SchedulerLocality {
		weights = j.Meta.Weights(j.Target)
	}
	return mapreduce.Run(mapreduce.Config{
		FS:         j.FS,
		File:       j.File,
		TargetSub:  j.Target,
		App:        j.App,
		Picker:     j.Scheduler.factory(),
		Weights:    weights,
		SkipEmpty:  j.SkipEmpty && weights != nil,
		Reducers:   j.Reducers,
		ExecuteApp: j.Execute,
		Faults:     j.Faults,
		Retry:      j.Retry,
		Detect:     j.Detect,
		Mitigate:   j.Mitigate,
		Partition:  j.Partition,
		WeightsErr: j.MetaErr,
		Trace:      j.Trace,
	})
}

// Built-in applications (paper §V-A).

// WordCount counts word occurrences in the target sub-dataset.
func WordCount() App { return apps.WordCount{} }

// WordHistogram computes the aggregate word-length histogram.
func WordHistogram() App { return apps.WordHistogram{} }

// MovingAverage smooths the rating series over the given window.
func MovingAverage(windowSeconds int64) App { return apps.NewMovingAverage(windowSeconds) }

// TopKSearch finds the k records most similar to query.
func TopKSearch(k int, query string) App { return apps.NewTopKSearch(k, query) }

// Sessionize reconstructs session windows from the target's event stream
// (the user-sessionization analysis the paper's introduction motivates).
func Sessionize(gapSeconds int64) App { return apps.NewSessionize(gapSeconds) }

// DistributedSort globally orders the target's records by timestamp:
// with PartitionRange each reducer owns a contiguous key range, so the
// concatenated reducer outputs are the sorted stream.
func DistributedSort() App { return apps.DistributedSort{} }

// SubDatasetJoin joins the analyzed sub-dataset's time-windowed rating
// stream against a second sub-dataset's pre-aggregated windows (see
// BuildJoinSide). windowSeconds <= 0 takes the one-day default.
func SubDatasetJoin(buildSub string, windowSeconds int64, build map[string]string) App {
	return apps.NewSubDatasetJoin(buildSub, windowSeconds, build)
}

// BuildJoinSide aggregates buildSub's rating stream into per-window
// "count×mean" join entries, scanning only the blocks the ElasticMap
// distribution reports non-empty — the meta-data prunes the build-side
// scan exactly as it prunes analysis scheduling.
func BuildJoinSide(fs *FileSystem, file string, meta *Meta, buildSub string, windowSeconds int64) (map[string]string, error) {
	blocks, err := fs.Blocks(file)
	if err != nil {
		return nil, err
	}
	byBlock := make([][]Record, len(blocks))
	for i, b := range blocks {
		byBlock[i] = b.Records
	}
	return apps.BuildJoinSide(byBlock, meta.Array().Distribution(buildSub), buildSub, windowSeconds), nil
}
