package datanet_test

import (
	"fmt"
	"strings"
	"testing"

	"datanet"
	"datanet/internal/gen"
)

// buildFixture creates a small cluster + dataset + meta through the public
// API only.
func buildFixture(t *testing.T) (*datanet.FileSystem, *datanet.Meta, string) {
	t.Helper()
	topo := datanet.NewCluster(8, 2)
	fs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 64 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Movies(gen.MovieConfig{Movies: 200, Reviews: 8000, Seed: 4})
	if _, err := fs.Write("reviews.log", recs); err != nil {
		t.Fatal(err)
	}
	meta, err := datanet.BuildMeta(fs, "reviews.log", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return fs, meta, gen.MovieID(0)
}

func TestEndToEndJob(t *testing.T) {
	fs, meta, target := buildFixture(t)

	baseline := datanet.Job{
		FS: fs, File: "reviews.log", Target: target,
		App: datanet.WordCount(), Scheduler: datanet.SchedulerLocality,
	}
	br, err := baseline.Run()
	if err != nil {
		t.Fatal(err)
	}
	withDN := baseline
	withDN.Scheduler = datanet.SchedulerDataNet
	withDN.Meta = meta
	dr, err := withDN.Run()
	if err != nil {
		t.Fatal(err)
	}
	// At this miniature scale the timing model is overhead-bound, so assert
	// the scheduling invariant itself: DataNet distributes the filtered
	// sub-dataset more evenly than locality scheduling.
	spread := func(m map[datanet.NodeID]int64) float64 {
		var max, total int64
		for _, v := range m {
			total += v
			if v > max {
				max = v
			}
		}
		if total == 0 {
			return 0
		}
		return float64(max) * float64(len(m)) / float64(total)
	}
	if dr.AnalysisTime > br.AnalysisTime*1.05 {
		t.Errorf("DataNet analysis %.2fs noticeably slower than baseline %.2fs", dr.AnalysisTime, br.AnalysisTime)
	}
	if spread(dr.NodeWorkload) >= spread(br.NodeWorkload) {
		t.Errorf("DataNet workload spread %.2f not better than baseline %.2f",
			spread(dr.NodeWorkload), spread(br.NodeWorkload))
	}
	if br.SchedulerName != "hadoop-locality" || dr.SchedulerName != "datanet" {
		t.Errorf("scheduler names: %q, %q", br.SchedulerName, dr.SchedulerName)
	}
}

func TestJobExecuteOutputsMatchAcrossSchedulers(t *testing.T) {
	fs, meta, target := buildFixture(t)
	run := func(s datanet.Scheduler, m *datanet.Meta) map[string]string {
		r, err := datanet.Job{
			FS: fs, File: "reviews.log", Target: target,
			App: datanet.WordCount(), Scheduler: s, Meta: m, Execute: true,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Output
	}
	a := run(datanet.SchedulerLocality, nil)
	b := run(datanet.SchedulerDataNet, meta)
	if len(a) == 0 {
		t.Fatal("no output")
	}
	if len(a) != len(b) {
		t.Fatalf("output sizes differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("output[%q] differs: %q vs %q — scheduling must not change results", k, v, b[k])
		}
	}
}

func TestMetaEstimateAndWeights(t *testing.T) {
	fs, meta, target := buildFixture(t)
	est := meta.Estimate(target)
	if est <= 0 {
		t.Fatalf("Estimate = %d", est)
	}
	// Ground truth via the filesystem.
	truth, err := fs.SubDistribution("reviews.log", target)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, b := range truth {
		want += b
	}
	rel := float64(est-want) / float64(want)
	if rel < -0.25 || rel > 0.25 {
		t.Errorf("estimate %d vs truth %d (%.1f%% off)", est, want, rel*100)
	}
	weights := meta.Weights(target)
	if len(weights) != len(truth) {
		t.Fatalf("weights length %d, blocks %d", len(weights), len(truth))
	}
	if meta.MemoryBytes() <= 0 {
		t.Error("meta-data should have positive footprint")
	}
}

func TestMetaEncodeDecode(t *testing.T) {
	_, meta, target := buildFixture(t)
	data, err := meta.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := datanet.DecodeMeta(data, "reviews.log")
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate(target) != meta.Estimate(target) {
		t.Error("estimate changed across encode/decode")
	}
	if _, err := datanet.DecodeMeta([]byte("junk"), "x"); err == nil {
		t.Error("junk must not decode")
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := map[datanet.Scheduler]string{
		datanet.SchedulerLocality:      "locality",
		datanet.SchedulerDataNet:       "datanet",
		datanet.SchedulerCapacityAware: "datanet-capacity",
		datanet.SchedulerMaxFlow:       "maxflow",
		datanet.SchedulerLPT:           "lpt",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestAllSchedulersRun(t *testing.T) {
	fs, meta, target := buildFixture(t)
	for _, s := range []datanet.Scheduler{
		datanet.SchedulerLocality, datanet.SchedulerDataNet,
		datanet.SchedulerCapacityAware, datanet.SchedulerMaxFlow, datanet.SchedulerLPT,
	} {
		r, err := datanet.Job{
			FS: fs, File: "reviews.log", Target: target,
			App: datanet.TopKSearch(5, "plot twist"), Scheduler: s, Meta: meta,
		}.Run()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.JobTime <= 0 {
			t.Errorf("%v: JobTime = %g", s, r.JobTime)
		}
	}
}

func TestSkipEmptySavesIO(t *testing.T) {
	fs, meta, target := buildFixture(t)
	r, err := datanet.Job{
		FS: fs, File: "reviews.log", Target: target,
		App: datanet.WordHistogram(), Scheduler: datanet.SchedulerDataNet,
		Meta: meta, SkipEmpty: true,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.SkippedBlocks == 0 {
		t.Error("expected some blocks skipped (the §V-B I/O saving)")
	}
}

func TestBuiltInApps(t *testing.T) {
	for _, app := range []datanet.App{
		datanet.WordCount(), datanet.WordHistogram(),
		datanet.MovingAverage(3600), datanet.TopKSearch(3, "q"),
	} {
		if app.Name() == "" || app.CostFactor() <= 0 {
			t.Errorf("app %T malformed", app)
		}
	}
}

// Example-style smoke of the documented quickstart flow.
func TestQuickstartFlow(t *testing.T) {
	topo := datanet.NewCluster(4, 2)
	fs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 32 << 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var recs []datanet.Record
	for i := 0; i < 500; i++ {
		recs = append(recs, datanet.Record{
			Sub:     fmt.Sprintf("user-%d", i%5),
			Time:    int64(i),
			Payload: strings.Repeat("log line ", 10),
		})
	}
	if _, err := fs.Write("logs", recs); err != nil {
		t.Fatal(err)
	}
	meta, err := datanet.BuildMeta(fs, "logs", datanet.MetaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := datanet.Job{
		FS: fs, File: "logs", Target: "user-3",
		App: datanet.WordCount(), Scheduler: datanet.SchedulerDataNet,
		Meta: meta, Execute: true,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["log"] != "1000" { // 100 records × 10 "log" tokens
		t.Errorf("word count = %q, want 1000", res.Output["log"])
	}
}

// TestJobWithFaults drives the public fault surface: a crash plan must
// leave the answer identical to the fault-free run, and a metadata load
// error must degrade the scheduler rather than fail the job.
func TestJobWithFaults(t *testing.T) {
	fs, meta, target := buildFixture(t)
	job := datanet.Job{
		FS: fs, File: "reviews.log", Target: target,
		App: datanet.WordCount(), Scheduler: datanet.SchedulerDataNet,
		Meta: meta, Execute: true,
	}
	clean, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}

	faulty := job
	faulty.Faults = &datanet.FaultPlan{
		Seed:    3,
		Crashes: []datanet.Crash{{Node: 2, At: clean.FilterEnd / 2}},
		Read:    datanet.ReadErrors{Prob: 0.02},
	}
	faulty.Retry = datanet.RetryPolicy{MaxAttempts: 8}
	fr, err := faulty.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fr.NodeCrashes != 1 {
		t.Errorf("NodeCrashes = %d, want 1", fr.NodeCrashes)
	}
	if len(fr.Output) != len(clean.Output) {
		t.Fatalf("output size diverged under faults: %d vs %d", len(fr.Output), len(clean.Output))
	}
	for k, v := range clean.Output {
		if fr.Output[k] != v {
			t.Fatalf("output[%q] diverged under faults: %q vs %q", k, fr.Output[k], v)
		}
	}

	degraded := job
	degraded.Meta = nil
	degraded.MetaErr = fmt.Errorf("meta file unreadable")
	dr, err := degraded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !dr.MetadataFallback {
		t.Error("MetadataFallback not set")
	}
	if !strings.Contains(dr.SchedulerName, "fallback") {
		t.Errorf("scheduler %q does not record the fallback", dr.SchedulerName)
	}
	if dr.Output["movie"] != clean.Output["movie"] {
		t.Errorf("fallback output diverged: %q vs %q", dr.Output["movie"], clean.Output["movie"])
	}
}
