// Web-access-log scenario (WorldCup'98-style, one of the dataset families
// the paper's introduction motivates): team pages receive flash crowds
// around match days. The example analyzes one team's sub-dataset, shows
// the per-block footprint ElasticMap reveals, and compares the schedulers
// — including the reactive strategies (post-hoc migration, speculative
// execution) the paper argues against.
//
//	go run ./examples/weblog
package main

import (
	"fmt"
	"log"

	"datanet"
)

func main() {
	const blockSize = 256 << 10
	topo := datanet.NewScaledCluster(16, 4, blockSize)
	fs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: blockSize, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	recs := datanet.GenerateWebLog(datanet.WebLogConfig{
		Requests: 150000,
		Seed:     21,
	})
	if _, err := fs.Write("access.log", recs); err != nil {
		log.Fatal(err)
	}
	meta, err := datanet.BuildMeta(fs, "access.log", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		log.Fatal(err)
	}

	target := datanet.TeamID(0)
	fmt.Printf("estimated volume of %s: %d bytes across %d blocks\n",
		target, meta.Estimate(target), meta.Array().Len())

	// Per-block footprint from meta-data alone (flash crowds visible as
	// spikes).
	weights := meta.Weights(target)
	nonzero := 0
	var peak int64
	for _, w := range weights {
		if w > 0 {
			nonzero++
		}
		if w > peak {
			peak = w
		}
	}
	fmt.Printf("present in %d/%d blocks; peak block holds %d bytes\n\n", nonzero, len(weights), peak)

	app := datanet.TopKSearch(10, "GET frontpage schedule results")
	fmt.Printf("%-24s %14s\n", "scheduler", "analysis (s)")
	for _, s := range []datanet.Scheduler{datanet.SchedulerLocality, datanet.SchedulerDataNet, datanet.SchedulerMaxFlow} {
		res, err := datanet.Job{
			FS: fs, File: "access.log", Target: target,
			App: app, Scheduler: s, Meta: meta,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %14.2f\n", res.SchedulerName, res.AnalysisTime)
	}
}
