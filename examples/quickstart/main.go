// Quickstart: store a log on the simulated HDFS, build DataNet's
// ElasticMap meta-data with one scan, and run a sub-dataset analysis under
// both Hadoop's locality scheduler and DataNet's distribution-aware
// scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"datanet"
)

func main() {
	// A 32-node cluster across 4 racks, HDFS-style storage with 1 MiB
	// blocks and 3-way replication (node rates scaled to keep 64 MiB-block proportions).
	topo := datanet.NewScaledCluster(32, 4, 256<<10)
	fs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 256 << 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic movie-review log: 200k reviews of 2000 movies, stored
	// chronologically — so each movie's reviews cluster around its release.
	recs := datanet.GenerateMovieLog(datanet.MovieLogConfig{
		Movies:  2000,
		Reviews: 200000,
		Seed:    42,
	})
	info, err := fs.Write("reviews.log", recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d records in %d blocks\n", info.Records, len(info.Blocks))

	// One scan of the raw data builds the ElasticMap array.
	meta, err := datanet.BuildMeta(fs, "reviews.log", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	target := datanet.MovieID(0) // the most-reviewed movie
	fmt.Printf("meta-data: %d bytes; estimated size of %s: %d bytes\n",
		meta.MemoryBytes(), target, meta.Estimate(target))

	// Analyze the movie's reviews with Word Count under both schedulers.
	job := datanet.Job{
		FS: fs, File: "reviews.log", Target: target,
		App: datanet.WordCount(), Scheduler: datanet.SchedulerLocality,
	}
	baseline, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}
	job.Scheduler = datanet.SchedulerDataNet
	job.Meta = meta
	balanced, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %14s\n", "scheduler", "job time", "max node load")
	for _, r := range []*datanet.Result{baseline, balanced} {
		var max int64
		for _, w := range r.NodeWorkload {
			if w > max {
				max = w
			}
		}
		fmt.Printf("%-22s %10.2f s %12d B\n", r.SchedulerName, r.AnalysisTime, max)
	}
	imp := (baseline.AnalysisTime - balanced.AnalysisTime) / baseline.AnalysisTime
	fmt.Printf("\nDataNet improvement: %.1f%%\n", imp*100)
}
