// GitHub-events scenario (paper §V-A.4): analyze one event type
// ("IssueEvent") from an event log whose per-type volume is imbalanced
// across blocks without being release-clustered. Also demonstrates
// meta-data persistence: the ElasticMap array is serialized and reloaded,
// standing in for the paper's "store the meta-data into a database" future
// work.
//
//	go run ./examples/github_events
package main

import (
	"fmt"
	"log"

	"datanet"
)

func main() {
	topo := datanet.NewScaledCluster(32, 4, 256<<10)
	fs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 256 << 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	recs := datanet.GenerateEventLog(datanet.EventLogConfig{
		Events:   250000,
		SpanDays: 120,
		Seed:     3,
	})
	if _, err := fs.Write("gharchive.log", recs); err != nil {
		log.Fatal(err)
	}

	meta, err := datanet.BuildMeta(fs, "gharchive.log", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		log.Fatal(err)
	}

	// Persist and reload the meta-data (it survives independently of the
	// raw data, so later jobs can schedule without rescanning).
	blob, err := meta.Encode()
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := datanet.DecodeMeta(blob, "gharchive.log")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meta-data: %d bytes serialized for %d blocks\n", len(blob), reloaded.Array().Len())

	// Estimated volume per event type, from meta-data alone.
	fmt.Println("\nestimated sub-dataset sizes (top 8 event types):")
	for _, typ := range datanet.EventTypes()[:8] {
		fmt.Printf("  %-32s %10d bytes\n", typ, reloaded.Estimate(typ))
	}

	// Top-K search over IssueEvent with and without DataNet.
	const target = "IssueEvent"
	app := datanet.TopKSearch(10, "opened closed merged issue")
	base, err := datanet.Job{
		FS: fs, File: "gharchive.log", Target: target,
		App: app, Scheduler: datanet.SchedulerLocality,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	dn, err := datanet.Job{
		FS: fs, File: "gharchive.log", Target: target,
		App: app, Scheduler: datanet.SchedulerDataNet, Meta: reloaded,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	longest := func(r *datanet.Result) float64 {
		var max float64
		for _, t := range r.NodeCompute {
			if t > max {
				max = t
			}
		}
		return max
	}
	fmt.Printf("\n%-22s %14s %16s\n", "scheduler", "analysis (s)", "longest map (s)")
	fmt.Printf("%-22s %14.2f %16.2f\n", base.SchedulerName, base.AnalysisTime, longest(base))
	fmt.Printf("%-22s %14.2f %16.2f\n", dn.SchedulerName, dn.AnalysisTime, longest(dn))
	fmt.Println("\n(the paper reports 125 s vs 107 s for the longest map on its GitHub data;")
	fmt.Println(" the gain is smaller than on the movie data because event types are not")
	fmt.Println(" release-clustered — exactly the §V-A.4 observation)")
}
