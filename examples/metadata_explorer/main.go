// Metadata explorer: the memory/accuracy trade-off of ElasticMap (paper
// Table II and Fig. 9). Sweeps the hash-map share α, printing realized α,
// overall accuracy χ, representation ratio and footprint; then shows how a
// fixed memory budget picks α automatically, and how estimates track the
// truth across sub-dataset sizes.
//
//	go run ./examples/metadata_explorer
package main

import (
	"fmt"
	"log"
	"sort"

	"datanet"
)

func main() {
	topo := datanet.NewCluster(16, 4)
	fs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 256 << 10, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	recs := datanet.GenerateMovieLog(datanet.MovieLogConfig{
		Movies:  1500,
		Reviews: 120000,
		Seed:    11,
	})
	if _, err := fs.Write("reviews.log", recs); err != nil {
		log.Fatal(err)
	}

	// Ground truth for the accuracy metric.
	truth := make(map[string]int64)
	blocks, _ := fs.Blocks("reviews.log")
	var subs []string
	for _, b := range blocks {
		for sub, sz := range b.SubSizes() {
			if truth[sub] == 0 {
				subs = append(subs, sub)
			}
			truth[sub] += sz
		}
	}
	sort.Strings(subs)

	fmt.Printf("%8s %12s %12s %12s %12s\n", "α target", "α realized", "accuracy χ", "ratio", "meta-data")
	for _, alpha := range []float64{0.51, 0.40, 0.31, 0.25, 0.21, 0.10} {
		meta, err := datanet.BuildMeta(fs, "reviews.log", datanet.MetaOptions{Alpha: alpha})
		if err != nil {
			log.Fatal(err)
		}
		arr := meta.Array()
		fmt.Printf("%7.0f%% %11.1f%% %11.1f%% %12.0f %10d B\n",
			alpha*100, arr.MeanAlpha()*100, arr.OverallAccuracy(subs)*100,
			arr.RepresentationRatio(), meta.MemoryBytes())
	}

	// Memory-budget mode: Eq. 5 inverted per block to pick the largest α
	// that fits the given per-block meta-data budget.
	fmt.Println("\nmemory-budget mode (budget per block):")
	for _, budgetKiB := range []int64{1, 2, 4, 8} {
		meta, err := datanet.BuildMeta(fs, "reviews.log",
			datanet.MetaOptions{MemoryBudgetBits: budgetKiB * 1024 * 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %2d KiB/block → realized α %5.1f%%, total meta-data %d B\n",
			budgetKiB, meta.Array().MeanAlpha()*100, meta.MemoryBytes())
	}

	// Estimate vs truth across the size spectrum (Fig. 9's takeaway).
	meta, err := datanet.BuildMeta(fs, "reviews.log", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(subs, func(i, j int) bool { return truth[subs[i]] > truth[subs[j]] })
	fmt.Println("\nestimate vs truth (largest movies, then a mid-tail one):")
	show := subs[:5]
	show = append(show, subs[len(subs)/2])
	for _, sub := range show {
		est := meta.Estimate(sub)
		rel := float64(est-truth[sub]) / float64(truth[sub]) * 100
		fmt.Printf("  %-14s truth %9d B  estimate %9d B  (%+.1f%%)\n", sub, truth[sub], est, rel)
	}
}
