// MovieLens-style scenario: the paper's §V-A evaluation workflow. Four
// analysis jobs (Moving Average, Top-K Search, Word Count, Word Histogram)
// run over one movie's sub-dataset with and without DataNet, reporting the
// per-application improvement, per-node workload balance, and the I/O
// saved by skipping blocks the ElasticMap proves empty.
//
//	go run ./examples/movielens
package main

import (
	"fmt"
	"log"
	"sort"

	"datanet"
)

func main() {
	topo := datanet.NewScaledCluster(32, 4, 256<<10)
	fs, err := datanet.NewFileSystem(topo, datanet.FSConfig{BlockSize: 256 << 10, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	recs := datanet.GenerateMovieLog(datanet.MovieLogConfig{
		Movies:  3000,
		Reviews: 300000,
		Seed:    7,
	})
	if _, err := fs.Write("movielens.log", recs); err != nil {
		log.Fatal(err)
	}
	meta, err := datanet.BuildMeta(fs, "movielens.log", datanet.MetaOptions{Alpha: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	target := datanet.MovieID(0)

	apps := []datanet.App{
		datanet.MovingAverage(86400),
		datanet.TopKSearch(10, "plot twist ending amazing director"),
		datanet.WordCount(),
		datanet.WordHistogram(),
		datanet.Sessionize(1800), // the intro's user-sessionization analysis
	}

	fmt.Printf("analysis of %s over %d blocks\n\n", target, meta.Array().Len())
	fmt.Printf("%-15s %14s %14s %12s\n", "application", "without (s)", "with (s)", "improvement")
	var lastBase, lastDN *datanet.Result
	for _, app := range apps {
		base, err := datanet.Job{
			FS: fs, File: "movielens.log", Target: target,
			App: app, Scheduler: datanet.SchedulerLocality,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		dn, err := datanet.Job{
			FS: fs, File: "movielens.log", Target: target,
			App: app, Scheduler: datanet.SchedulerDataNet, Meta: meta,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		imp := (base.AnalysisTime - dn.AnalysisTime) / base.AnalysisTime * 100
		fmt.Printf("%-15s %14.2f %14.2f %11.1f%%\n", app.Name(), base.AnalysisTime, dn.AnalysisTime, imp)
		lastBase, lastDN = base, dn
	}

	// Workload balance of the final run (bytes of the filtered sub-dataset
	// stored per node, sorted descending).
	fmt.Println("\nper-node filtered workload (KiB, sorted desc):")
	printLoads := func(name string, r *datanet.Result) {
		var loads []int64
		for _, w := range r.NodeWorkload {
			loads = append(loads, w)
		}
		sort.Slice(loads, func(i, j int) bool { return loads[i] > loads[j] })
		fmt.Printf("  %-18s", name)
		for i, l := range loads {
			if i%8 == 0 && i > 0 {
				fmt.Printf("\n  %-18s", "")
			}
			fmt.Printf("%6d", l/1024)
		}
		fmt.Println()
	}
	printLoads("without DataNet:", lastBase)
	printLoads("with DataNet:", lastDN)

	// The §V-B I/O saving: skip blocks with no trace of the target.
	skip, err := datanet.Job{
		FS: fs, File: "movielens.log", Target: target,
		App: datanet.WordCount(), Scheduler: datanet.SchedulerDataNet,
		Meta: meta, SkipEmpty: true,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith SkipEmpty: %d of %d blocks never read\n",
		skip.SkippedBlocks, meta.Array().Len())
}
